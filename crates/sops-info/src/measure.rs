//! The unified measurement engine: one trait, one workspace, every
//! estimator.
//!
//! PR 3 gave the KSG hot path a persistent engine (`InfoWorkspace`); this
//! module extends the same treatment to the whole measurement stack and
//! puts a single polymorphic surface on top of it:
//!
//! * [`Estimator`] — the two-phase `prepare(view)` / `estimate()` trait
//!   every multi-information estimator implements. `prepare` binds a
//!   sample view (copying it into owned scratch and building whatever
//!   per-view indexes the method needs); `estimate` runs on the prepared
//!   state. Adding an estimator to the workspace means implementing this
//!   one trait.
//! * [`MeasureConfig`] — the closed set of estimator selections the
//!   pipeline understands (KSG, KDE, shrinkage binning, discrete plug-in,
//!   Gaussian), carrying each method's own config.
//! * [`MeasureWorkspace`] — owns one persistent engine per estimator
//!   family plus the Frenzel–Pompe CMI engine, and dispatches any
//!   [`MeasureConfig`] through the trait
//!   ([`MeasureWorkspace::estimator_mut`] hands out `&mut dyn Estimator`).
//!   The pipeline's evaluation workers hold one workspace each
//!   (`sops_par::parallel_map_with`), so every estimator family enjoys
//!   scratch reuse across the time steps a worker claims.
//!
//! Every engine keeps the contracts established by `InfoWorkspace`:
//! results **bit-identical for any worker count** and to the respective
//! pre-workspace reference (frozen in
//! `crates/sops-info/tests/workspace_measure.rs`), and zero steady-state
//! allocations on a bounded workload (capacity tests, same file). The
//! Gaussian baseline is the one exception to the allocation contract: it
//! builds a `d × d` covariance matrix per call (the method is `O(m d²)`
//! with a trivial constant, so the allocation is irrelevant — and
//! excluded from [`MeasureWorkspace::capacity_signature`]).

use crate::binning::{BinnedWorkspace, BinningConfig, SupportModel};
use crate::conditional::{CmiConfig, CmiWorkspace};
use crate::decomposition::{Decomposition, Grouping};
use crate::gaussian::multi_information_gaussian;
use crate::kde::{KdeConfig, KdeWorkspace};
use crate::ksg::KsgConfig;
use crate::workspace::InfoWorkspace;
use crate::SampleView;
use sops_math::PairMatrix;

/// A two-phase multi-information estimator over a [`SampleView`].
///
/// `prepare` binds the view — engines copy the samples into owned scratch
/// (so the trait needs no lifetime parameter) and build per-view indexes;
/// `estimate` evaluates on the prepared state and may be called again
/// without re-preparing (same result). Engines are persistent: buffers
/// grow to the workload on first use and are reused afterwards.
pub trait Estimator {
    /// Binds `view` as the estimation target.
    fn prepare(&mut self, view: &SampleView<'_>);

    /// Multi-information (bits) of the prepared view.
    ///
    /// # Panics
    ///
    /// Panics if no view has been prepared, or on the estimator family's
    /// own invalid-parameter conditions (e.g. `k >= rows` for KSG).
    fn estimate(&mut self) -> f64;

    /// Convenience: `prepare` + `estimate` in one call.
    fn measure(&mut self, view: &SampleView<'_>) -> f64 {
        self.prepare(view);
        self.estimate()
    }
}

/// Which estimator the pipeline's measurement stage runs, with the
/// method's own configuration.
#[derive(Debug, Clone, Copy)]
pub enum MeasureConfig {
    /// Kraskov–Stögbauer–Grassberger k-NN estimator (the paper's method
    /// and the default).
    Ksg(KsgConfig),
    /// Leave-one-out Gaussian-kernel density ratio (§5.3 baseline).
    Kde(KdeConfig),
    /// James–Stein shrinkage binning (§5.3 baseline).
    Binned(BinningConfig),
    /// Maximum-likelihood plug-in over equal-width bin tuples — the
    /// discrete baseline (binning with shrinkage off, observed support).
    DiscretePlugin {
        /// Bins per coordinate.
        bins: usize,
    },
    /// Closed-form Gaussian multi-information of the empirical covariance
    /// — the parametric baseline. Yields `NaN` (not a panic) on steps
    /// whose empirical covariance is singular — fewer ensemble runs than
    /// joint dimensions, or degenerate coordinates (see
    /// [`multi_information_gaussian`]).
    Gaussian,
    /// A base family evaluated on a row-subsampled view: only every
    /// `every`-th ensemble sample reaches the estimator. The estimator-side
    /// escape hatch for schedules/ensembles too large for the base cost
    /// (KSG is `O(m log m)` per evaluation but with a heavy constant at
    /// large `m`). `every == 1` is bit-identical to the base family.
    Strided {
        /// The base family to run on the subsampled rows.
        family: StridedFamily,
        /// Row stride: rows `0, every, 2·every, …` are kept. Must be ≥ 1.
        every: usize,
    },
}

/// The base estimator family a [`MeasureConfig::Strided`] selection
/// delegates to after subsampling rows. A mirror of the continuous
/// [`MeasureConfig`] variants (the discrete plug-in is reachable via
/// [`Binned`](StridedFamily::Binned) with [`discrete_plugin_config`]).
#[derive(Debug, Clone, Copy)]
pub enum StridedFamily {
    /// KSG on the subsampled view.
    Ksg(KsgConfig),
    /// KDE on the subsampled view.
    Kde(KdeConfig),
    /// Shrinkage binning on the subsampled view.
    Binned(BinningConfig),
    /// Closed-form Gaussian on the subsampled view.
    Gaussian,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig::Ksg(KsgConfig::default())
    }
}

impl MeasureConfig {
    /// The canonical measure family names, in the order the CLI and the
    /// sweep service advertise them (each is accepted by [`parse`]
    /// (MeasureConfig::parse)).
    pub const FAMILIES: [&'static str; 5] = ["ksg", "kde", "binned", "discrete", "gaussian"];

    /// Parses a measure selection by name: a family from [`FAMILIES`]
    /// (MeasureConfig::FAMILIES), optionally suffixed `@EVERY` for the
    /// strided form (`ksg@4` keeps every 4th ensemble sample; `discrete`
    /// has no strided form). `None` for unknown names or a stride < 1.
    /// Shared by `sops-repro` and `sops-serve` so the two front ends
    /// cannot drift.
    pub fn parse(name: &str) -> Option<MeasureConfig> {
        if let Some((base, every)) = name.split_once('@') {
            let every: usize = every.parse().ok().filter(|&e| e >= 1)?;
            let family = match base {
                "ksg" => StridedFamily::Ksg(KsgConfig::default()),
                "kde" => StridedFamily::Kde(KdeConfig::default()),
                "binned" => StridedFamily::Binned(BinningConfig::default()),
                "gaussian" => StridedFamily::Gaussian,
                _ => return None,
            };
            return Some(MeasureConfig::Strided { family, every });
        }
        Some(match name {
            "ksg" => MeasureConfig::default(),
            "kde" => MeasureConfig::Kde(KdeConfig::default()),
            "binned" => MeasureConfig::Binned(BinningConfig::default()),
            "discrete" => MeasureConfig::DiscretePlugin { bins: 6 },
            "gaussian" => MeasureConfig::Gaussian,
            _ => return None,
        })
    }

    /// The same selection with the worker-thread count overridden where
    /// the method has one (KSG, KDE; the other methods are sequential —
    /// they run in microseconds at ensemble sizes).
    pub fn with_threads(self, threads: usize) -> Self {
        match self {
            MeasureConfig::Ksg(cfg) => MeasureConfig::Ksg(KsgConfig { threads, ..cfg }),
            MeasureConfig::Kde(cfg) => MeasureConfig::Kde(KdeConfig { threads, ..cfg }),
            MeasureConfig::Strided { family, every } => MeasureConfig::Strided {
                family: match family {
                    StridedFamily::Ksg(cfg) => StridedFamily::Ksg(KsgConfig { threads, ..cfg }),
                    StridedFamily::Kde(cfg) => StridedFamily::Kde(KdeConfig { threads, ..cfg }),
                    other => other,
                },
                every,
            },
            other => other,
        }
    }

    /// The KSG parameters KSG-specific analyses (the Eq. 5 decomposition
    /// series, pairwise matrices) should run with: the inner config when
    /// this selection *is* KSG, the defaults otherwise.
    pub fn ksg_config(&self) -> KsgConfig {
        match self {
            MeasureConfig::Ksg(cfg) => *cfg,
            MeasureConfig::Strided {
                family: StridedFamily::Ksg(cfg),
                ..
            } => *cfg,
            _ => KsgConfig::default(),
        }
    }

    /// Short display label (figures, benches).
    pub fn label(&self) -> &'static str {
        match self {
            MeasureConfig::Ksg(_) => "ksg",
            MeasureConfig::Kde(_) => "kde",
            MeasureConfig::Binned(_) => "binned",
            MeasureConfig::DiscretePlugin { .. } => "discrete",
            MeasureConfig::Gaussian => "gaussian",
            MeasureConfig::Strided { family, .. } => match family {
                StridedFamily::Ksg(_) => "strided_ksg",
                StridedFamily::Kde(_) => "strided_kde",
                StridedFamily::Binned(_) => "strided_binned",
                StridedFamily::Gaussian => "strided_gaussian",
            },
        }
    }

    /// The selection with derived variants resolved to their engine
    /// family: `DiscretePlugin` becomes `Binned(discrete_plugin_config)`.
    /// Both dispatch surfaces ([`MeasureWorkspace::estimator_mut`] and
    /// [`MeasureWorkspace::multi_information`]) route through this, so
    /// the derivation lives in exactly one place.
    fn normalized(&self) -> MeasureConfig {
        match self {
            MeasureConfig::DiscretePlugin { bins } => {
                MeasureConfig::Binned(discrete_plugin_config(*bins))
            }
            other => *other,
        }
    }
}

/// An owned copy of the last prepared view — what lets the two-phase
/// trait avoid a lifetime parameter while staying allocation-free once
/// warm.
#[derive(Debug, Clone, Default)]
struct PreparedView {
    data: Vec<f64>,
    sizes: Vec<usize>,
    rows: usize,
}

impl PreparedView {
    fn set(&mut self, view: &SampleView<'_>) {
        self.data.clear();
        self.data.extend_from_slice(view.data);
        self.sizes.clear();
        self.sizes.extend_from_slice(view.block_sizes);
        self.rows = view.rows;
    }

    fn view(&self) -> SampleView<'_> {
        assert!(self.rows > 0, "Estimator: estimate() before prepare()");
        SampleView::new(&self.data, self.rows, &self.sizes)
    }

    fn capacity_signature(&self, sig: &mut Vec<usize>) {
        sig.push(self.data.capacity());
        sig.push(self.sizes.capacity());
    }
}

/// [`Estimator`] over the persistent KSG engine ([`InfoWorkspace`]).
#[derive(Debug, Clone, Default)]
pub struct KsgEstimator {
    /// Estimator parameters (public: reconfigure between calls freely;
    /// the scratch is shape-keyed, not config-keyed).
    pub cfg: KsgConfig,
    ws: InfoWorkspace,
    input: PreparedView,
}

impl KsgEstimator {
    /// An estimator with the given parameters and cold scratch.
    pub fn new(cfg: KsgConfig) -> Self {
        KsgEstimator {
            cfg,
            ..KsgEstimator::default()
        }
    }
}

impl Estimator for KsgEstimator {
    fn prepare(&mut self, view: &SampleView<'_>) {
        self.input.set(view);
    }

    fn estimate(&mut self) -> f64 {
        self.ws.multi_information(&self.input.view(), &self.cfg)
    }
}

/// [`Estimator`] over the persistent KDE engine ([`KdeWorkspace`]).
#[derive(Debug, Clone, Default)]
pub struct KdeEstimator {
    /// Estimator parameters.
    pub cfg: KdeConfig,
    ws: KdeWorkspace,
    input: PreparedView,
}

impl KdeEstimator {
    /// An estimator with the given parameters and cold scratch.
    pub fn new(cfg: KdeConfig) -> Self {
        KdeEstimator {
            cfg,
            ..KdeEstimator::default()
        }
    }
}

impl Estimator for KdeEstimator {
    fn prepare(&mut self, view: &SampleView<'_>) {
        self.input.set(view);
    }

    fn estimate(&mut self) -> f64 {
        self.ws.multi_information(&self.input.view(), &self.cfg)
    }
}

/// [`Estimator`] over the persistent binning engine ([`BinnedWorkspace`]).
#[derive(Debug, Clone, Default)]
pub struct BinnedEstimator {
    /// Estimator parameters.
    pub cfg: BinningConfig,
    ws: BinnedWorkspace,
    input: PreparedView,
}

impl BinnedEstimator {
    /// An estimator with the given parameters and cold scratch.
    pub fn new(cfg: BinningConfig) -> Self {
        BinnedEstimator {
            cfg,
            ..BinnedEstimator::default()
        }
    }
}

impl Estimator for BinnedEstimator {
    fn prepare(&mut self, view: &SampleView<'_>) {
        self.input.set(view);
    }

    fn estimate(&mut self) -> f64 {
        self.ws.multi_information(&self.input.view(), &self.cfg)
    }
}

/// [`Estimator`] over the closed-form Gaussian baseline
/// ([`multi_information_gaussian`]).
#[derive(Debug, Clone, Default)]
pub struct GaussianEstimator {
    input: PreparedView,
}

impl GaussianEstimator {
    /// A fresh estimator (the Gaussian baseline has no parameters).
    pub fn new() -> Self {
        GaussianEstimator::default()
    }
}

impl Estimator for GaussianEstimator {
    fn prepare(&mut self, view: &SampleView<'_>) {
        self.input.set(view);
    }

    fn estimate(&mut self) -> f64 {
        multi_information_gaussian(&self.input.view())
    }
}

/// [`Estimator`] that forwards a row-subsampled copy of the prepared
/// view (rows `0, every, 2·every, …`) to a base family's own persistent
/// engine — the [`MeasureConfig::Strided`] implementation.
///
/// Owns one engine per base family so stride scratch and base scratch
/// both stay warm across calls; `every == 1` forwards the view verbatim
/// and is bit-identical to the plain selection.
#[derive(Debug, Clone)]
pub struct StridedEstimator {
    /// Row stride (`max(1)` applied at prepare time).
    pub every: usize,
    /// Base family to run on the subsampled rows.
    pub family: StridedFamily,
    scratch: Vec<f64>,
    sizes: Vec<usize>,
    ksg: KsgEstimator,
    kde: KdeEstimator,
    binned: BinnedEstimator,
    gaussian: GaussianEstimator,
}

impl Default for StridedEstimator {
    fn default() -> Self {
        StridedEstimator {
            every: 1,
            family: StridedFamily::Ksg(KsgConfig::default()),
            scratch: Vec::new(),
            sizes: Vec::new(),
            ksg: KsgEstimator::default(),
            kde: KdeEstimator::default(),
            binned: BinnedEstimator::default(),
            gaussian: GaussianEstimator::default(),
        }
    }
}

impl StridedEstimator {
    /// An estimator with the given stride and base family, cold scratch.
    pub fn new(family: StridedFamily, every: usize) -> Self {
        StridedEstimator {
            every,
            family,
            ..StridedEstimator::default()
        }
    }

    fn inner_mut(&mut self) -> &mut dyn Estimator {
        match self.family {
            StridedFamily::Ksg(cfg) => {
                self.ksg.cfg = cfg;
                &mut self.ksg
            }
            StridedFamily::Kde(cfg) => {
                self.kde.cfg = cfg;
                &mut self.kde
            }
            StridedFamily::Binned(cfg) => {
                self.binned.cfg = cfg;
                &mut self.binned
            }
            StridedFamily::Gaussian => &mut self.gaussian,
        }
    }

    fn capacity_signature(&self, sig: &mut Vec<usize>) {
        sig.push(self.scratch.capacity());
        sig.push(self.sizes.capacity());
        sig.extend(self.ksg.ws.capacity_signature());
        self.ksg.input.capacity_signature(sig);
        sig.extend(self.kde.ws.capacity_signature());
        self.kde.input.capacity_signature(sig);
        sig.extend(self.binned.ws.capacity_signature());
        self.binned.input.capacity_signature(sig);
        self.gaussian.input.capacity_signature(sig);
    }
}

impl Estimator for StridedEstimator {
    fn prepare(&mut self, view: &SampleView<'_>) {
        let every = self.every.max(1);
        let stride: usize = view.block_sizes.iter().sum();
        self.scratch.clear();
        let mut rows = 0;
        for row in (0..view.rows).step_by(every) {
            self.scratch
                .extend_from_slice(&view.data[row * stride..(row + 1) * stride]);
            rows += 1;
        }
        self.sizes.clear();
        self.sizes.extend_from_slice(view.block_sizes);
        let strided = SampleView::new(&self.scratch, rows, &self.sizes);
        match self.family {
            StridedFamily::Ksg(cfg) => {
                self.ksg.cfg = cfg;
                self.ksg.prepare(&strided);
            }
            StridedFamily::Kde(cfg) => {
                self.kde.cfg = cfg;
                self.kde.prepare(&strided);
            }
            StridedFamily::Binned(cfg) => {
                self.binned.cfg = cfg;
                self.binned.prepare(&strided);
            }
            StridedFamily::Gaussian => self.gaussian.prepare(&strided),
        }
    }

    fn estimate(&mut self) -> f64 {
        self.inner_mut().estimate()
    }
}

/// The binning parameters [`MeasureConfig::DiscretePlugin`] maps to: the
/// ML plug-in over observed bin tuples (no shrinkage), which equals the
/// discrete multi-information of [`crate::discrete`] on the binned data.
pub fn discrete_plugin_config(bins: usize) -> BinningConfig {
    BinningConfig {
        bins,
        shrinkage: false,
        marginal_support: SupportModel::Observed,
        joint_support: SupportModel::Observed,
    }
}

/// One persistent engine per estimator family, behind one polymorphic
/// surface.
///
/// Long-running callers (the pipeline's evaluation workers, parameter
/// sweeps, the `estimator_shootout` example) hold one workspace and
/// drive any sequence of estimator selections through it:
///
/// ```
/// use sops_info::measure::{MeasureConfig, MeasureWorkspace};
/// use sops_info::gaussian::{equicorrelated_cov, sample_gaussian};
/// use sops_info::SampleView;
///
/// let data = sample_gaussian(&equicorrelated_cov(2, 0.8), 500, 7);
/// let view = SampleView::new(&data, 500, &[1, 1]);
/// let mut ws = MeasureWorkspace::new();
/// for cfg in [MeasureConfig::default(), MeasureConfig::Gaussian] {
///     let est = ws.estimator_mut(&cfg);
///     est.prepare(&view);
///     assert!((est.estimate() - 0.74).abs() < 0.3);
/// }
/// ```
#[derive(Debug, Clone, Default)]
pub struct MeasureWorkspace {
    ksg: KsgEstimator,
    kde: KdeEstimator,
    binned: BinnedEstimator,
    gaussian: GaussianEstimator,
    strided: StridedEstimator,
    cmi: CmiWorkspace,
}

impl MeasureWorkspace {
    /// An empty workspace; every engine's buffers grow to the workload
    /// size on first use and are reused afterwards.
    pub fn new() -> Self {
        MeasureWorkspace::default()
    }

    /// The engine `cfg` selects, with the engine's parameters set from
    /// `cfg`, as a trait object — the pipeline's dispatch point.
    pub fn estimator_mut(&mut self, cfg: &MeasureConfig) -> &mut dyn Estimator {
        match cfg.normalized() {
            MeasureConfig::Ksg(c) => {
                self.ksg.cfg = c;
                &mut self.ksg
            }
            MeasureConfig::Kde(c) => {
                self.kde.cfg = c;
                &mut self.kde
            }
            MeasureConfig::Binned(c) => {
                self.binned.cfg = c;
                &mut self.binned
            }
            MeasureConfig::DiscretePlugin { .. } => {
                unreachable!("normalized() resolves DiscretePlugin to Binned")
            }
            MeasureConfig::Gaussian => &mut self.gaussian,
            MeasureConfig::Strided { family, every } => {
                self.strided.family = family;
                self.strided.every = every;
                &mut self.strided
            }
        }
    }

    /// Multi-information (bits) of `view` under the selected estimator.
    ///
    /// Dispatches straight to the selected engine's borrowed-view entry
    /// point, skipping the owned copy [`Estimator::prepare`] makes (the
    /// price of the trait's lifetime-free two-phase API); results are
    /// identical to the trait path.
    pub fn multi_information(&mut self, view: &SampleView<'_>, cfg: &MeasureConfig) -> f64 {
        match cfg.normalized() {
            MeasureConfig::Ksg(c) => self.ksg.ws.multi_information(view, &c),
            MeasureConfig::Kde(c) => self.kde.ws.multi_information(view, &c),
            MeasureConfig::Binned(c) => self.binned.ws.multi_information(view, &c),
            MeasureConfig::DiscretePlugin { .. } => {
                unreachable!("normalized() resolves DiscretePlugin to Binned")
            }
            MeasureConfig::Gaussian => multi_information_gaussian(view),
            MeasureConfig::Strided { family, every } => {
                self.strided.family = family;
                self.strided.every = every;
                self.strided.measure(view)
            }
        }
    }

    /// Pairwise KSG mutual-information matrix — forwards to the owned
    /// [`InfoWorkspace`], sharing its per-block indexes and scratch.
    pub fn pairwise_mi_matrix(&mut self, view: &SampleView<'_>, cfg: &KsgConfig) -> PairMatrix {
        self.ksg.ws.pairwise_mi_matrix(view, cfg)
    }

    /// The Eq. 5 decomposition under the KSG estimator — forwards to the
    /// owned [`InfoWorkspace`].
    pub fn decompose(
        &mut self,
        view: &SampleView<'_>,
        grouping: &Grouping,
        cfg: &KsgConfig,
    ) -> Decomposition {
        self.ksg.ws.decompose(view, grouping, cfg)
    }

    /// Frenzel–Pompe `I(X;Y|Z)` (bits) — forwards to the owned
    /// [`CmiWorkspace`].
    pub fn conditional_mutual_information(
        &mut self,
        x: &[f64],
        y: &[f64],
        z: &[f64],
        rows: usize,
        dims: (usize, usize, usize),
        cfg: &CmiConfig,
    ) -> f64 {
        self.cmi
            .conditional_mutual_information(x, y, z, rows, dims, cfg)
    }

    /// Transfer entropy `T_{Y→X}` (bits) — forwards to the owned
    /// [`CmiWorkspace`].
    pub fn transfer_entropy(
        &mut self,
        x_next: &[f64],
        y_past: &[f64],
        x_past: &[f64],
        rows: usize,
        dims: (usize, usize, usize),
        cfg: &CmiConfig,
    ) -> f64 {
        self.cmi
            .transfer_entropy(x_next, y_past, x_past, rows, dims, cfg)
    }

    /// Capacities of every internal buffer of the allocation-free engines
    /// (KSG, KDE, binning/discrete, CMI) — constant for a warmed-up
    /// workspace driving a bounded workload, the contract enforced by
    /// `crates/sops-info/tests/workspace_measure.rs`. The Gaussian
    /// baseline's per-call `d × d` covariance is documented out of the
    /// contract (module docs).
    pub fn capacity_signature(&self) -> Vec<usize> {
        let mut sig = self.ksg.ws.capacity_signature();
        self.ksg.input.capacity_signature(&mut sig);
        sig.extend(self.kde.ws.capacity_signature());
        self.kde.input.capacity_signature(&mut sig);
        sig.extend(self.binned.ws.capacity_signature());
        self.binned.input.capacity_signature(&mut sig);
        self.gaussian.input.capacity_signature(&mut sig);
        self.strided.capacity_signature(&mut sig);
        sig.extend(self.cmi.capacity_signature());
        sig
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::{bivariate_gaussian_mi, equicorrelated_cov, sample_gaussian};

    #[test]
    fn every_selection_tracks_gaussian_truth() {
        let rho = 0.8;
        let truth = bivariate_gaussian_mi(rho);
        let data = sample_gaussian(&equicorrelated_cov(2, rho), 1200, 7);
        let sizes = [1usize, 1];
        let view = SampleView::new(&data, 1200, &sizes);
        let mut ws = MeasureWorkspace::new();
        let selections = [
            MeasureConfig::Ksg(KsgConfig::default()),
            MeasureConfig::Kde(KdeConfig::default()),
            MeasureConfig::Binned(BinningConfig::default()),
            MeasureConfig::DiscretePlugin { bins: 8 },
            MeasureConfig::Gaussian,
        ];
        for cfg in selections {
            let est = ws.multi_information(&view, &cfg);
            assert!(
                (est - truth).abs() < 0.4,
                "{}: est {est} vs truth {truth}",
                cfg.label()
            );
        }
    }

    #[test]
    fn trait_dispatch_matches_direct_engines() {
        let data = sample_gaussian(&equicorrelated_cov(3, 0.5), 400, 3);
        let sizes = [1usize, 1, 1];
        let view = SampleView::new(&data, 400, &sizes);
        let mut ws = MeasureWorkspace::new();

        let via_trait = ws.multi_information(&view, &MeasureConfig::default());
        let direct = InfoWorkspace::new().multi_information(&view, &KsgConfig::default());
        assert_eq!(via_trait.to_bits(), direct.to_bits());

        let kde_cfg = KdeConfig::default();
        let via_trait = ws.multi_information(&view, &MeasureConfig::Kde(kde_cfg));
        let direct = KdeWorkspace::new().multi_information(&view, &kde_cfg);
        assert_eq!(via_trait.to_bits(), direct.to_bits());

        let bin_cfg = BinningConfig::default();
        let via_trait = ws.multi_information(&view, &MeasureConfig::Binned(bin_cfg));
        let direct = BinnedWorkspace::new().multi_information(&view, &bin_cfg);
        assert_eq!(via_trait.to_bits(), direct.to_bits());
    }

    #[test]
    fn estimate_is_repeatable_without_reprepare() {
        let data = sample_gaussian(&equicorrelated_cov(2, 0.6), 300, 5);
        let sizes = [1usize, 1];
        let view = SampleView::new(&data, 300, &sizes);
        let mut ws = MeasureWorkspace::new();
        let est = ws.estimator_mut(&MeasureConfig::default());
        est.prepare(&view);
        let a = est.estimate();
        let b = est.estimate();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn discrete_plugin_equals_shrinkage_free_binning() {
        let data = sample_gaussian(&equicorrelated_cov(2, 0.7), 500, 9);
        let sizes = [1usize, 1];
        let view = SampleView::new(&data, 500, &sizes);
        let mut ws = MeasureWorkspace::new();
        let plugin = ws.multi_information(&view, &MeasureConfig::DiscretePlugin { bins: 6 });
        let binned = ws.multi_information(&view, &MeasureConfig::Binned(discrete_plugin_config(6)));
        assert_eq!(plugin.to_bits(), binned.to_bits());
    }

    #[test]
    fn with_threads_overrides_parallel_methods_only() {
        let cfg = MeasureConfig::Ksg(KsgConfig::default()).with_threads(3);
        assert!(matches!(
            cfg,
            MeasureConfig::Ksg(KsgConfig { threads: 3, .. })
        ));
        let cfg = MeasureConfig::Kde(KdeConfig::default()).with_threads(2);
        assert!(matches!(
            cfg,
            MeasureConfig::Kde(KdeConfig { threads: 2, .. })
        ));
        assert!(matches!(
            MeasureConfig::Gaussian.with_threads(5),
            MeasureConfig::Gaussian
        ));
    }

    #[test]
    #[should_panic(expected = "before prepare")]
    fn estimate_before_prepare_panics() {
        KsgEstimator::new(KsgConfig::default()).estimate();
    }

    #[test]
    fn stride_one_is_bit_identical_to_the_base_family() {
        let data = sample_gaussian(&equicorrelated_cov(3, 0.6), 600, 11);
        let sizes = [1usize, 1, 1];
        let view = SampleView::new(&data, 600, &sizes);
        let mut ws = MeasureWorkspace::new();
        let cases = [
            (
                MeasureConfig::Ksg(KsgConfig::default()),
                StridedFamily::Ksg(KsgConfig::default()),
            ),
            (
                MeasureConfig::Kde(KdeConfig::default()),
                StridedFamily::Kde(KdeConfig::default()),
            ),
            (
                MeasureConfig::Binned(BinningConfig::default()),
                StridedFamily::Binned(BinningConfig::default()),
            ),
            (MeasureConfig::Gaussian, StridedFamily::Gaussian),
        ];
        for (base, family) in cases {
            let plain = ws.multi_information(&view, &base);
            let strided = ws.multi_information(&view, &MeasureConfig::Strided { family, every: 1 });
            assert_eq!(
                plain.to_bits(),
                strided.to_bits(),
                "stride 1 must be bit-identical for {}",
                base.label()
            );
        }
    }

    #[test]
    fn strided_equals_the_base_family_on_a_manually_subsampled_view() {
        let every = 3;
        let data = sample_gaussian(&equicorrelated_cov(2, 0.7), 500, 13);
        let sizes = [1usize, 1];
        let view = SampleView::new(&data, 500, &sizes);
        let manual: Vec<f64> = (0..500)
            .step_by(every)
            .flat_map(|r| data[r * 2..(r + 1) * 2].to_vec())
            .collect();
        let manual_view = SampleView::new(&manual, manual.len() / 2, &sizes);
        let mut ws = MeasureWorkspace::new();
        let strided = ws.multi_information(
            &view,
            &MeasureConfig::Strided {
                family: StridedFamily::Ksg(KsgConfig::default()),
                every,
            },
        );
        let reference = ws.multi_information(&manual_view, &MeasureConfig::default());
        assert_eq!(strided.to_bits(), reference.to_bits());
    }

    #[test]
    fn parse_covers_every_family_and_rejects_junk() {
        for name in MeasureConfig::FAMILIES {
            let cfg = MeasureConfig::parse(name).unwrap();
            assert_eq!(cfg.label(), name, "family name round-trips as its label");
        }
        assert!(matches!(
            MeasureConfig::parse("ksg@4"),
            Some(MeasureConfig::Strided {
                family: StridedFamily::Ksg(_),
                every: 4,
            })
        ));
        assert!(matches!(
            MeasureConfig::parse("gaussian@2"),
            Some(MeasureConfig::Strided {
                family: StridedFamily::Gaussian,
                every: 2,
            })
        ));
        assert!(MeasureConfig::parse("ksg@0").is_none(), "stride 0 rejected");
        assert!(MeasureConfig::parse("ksg@").is_none());
        assert!(MeasureConfig::parse("discrete@2").is_none());
        assert!(MeasureConfig::parse("bogus").is_none());
        assert!(MeasureConfig::parse("bogus@3").is_none());
    }

    #[test]
    fn strided_labels_and_thread_override() {
        let cfg = MeasureConfig::Strided {
            family: StridedFamily::Kde(KdeConfig::default()),
            every: 4,
        };
        assert_eq!(cfg.label(), "strided_kde");
        assert!(matches!(
            cfg.with_threads(6),
            MeasureConfig::Strided {
                family: StridedFamily::Kde(KdeConfig { threads: 6, .. }),
                every: 4,
            }
        ));
        assert_eq!(
            MeasureConfig::Strided {
                family: StridedFamily::Gaussian,
                every: 2,
            }
            .label(),
            "strided_gaussian"
        );
    }
}
