//! k-NN search under the max-over-blocks metric of paper Eq. 19.
//!
//! The KSG multi-information estimator treats a joint sample
//! `w = (w₁, …, w_n)` (n observer variables, each a small vector) and uses
//! the metric
//!
//! ```text
//! ‖w′ − w‖ := max_i ‖w′_i − w_i‖₂
//! ```
//!
//! i.e. the L∞ product metric over blocks whose internal distance is
//! Euclidean. Sample counts here are modest (m ≤ ~1000) while the joint
//! dimension is large (2n ≥ 40), a regime where space-partitioning trees
//! degenerate to linear scans; a cache-friendly brute-force scan with an
//! early-exit block loop is the right tool (this matches standard KSG
//! implementations, e.g. Kraskov's MILCA and JIDT in high dimension).

/// A set of `m` joint samples, each a concatenation of `blocks` blocks of
/// sizes `block_sizes` (in order), stored row-major.
#[derive(Debug, Clone)]
pub struct BlockPoints<'a> {
    data: &'a [f64],
    /// Prefix offsets into one row; `block_offsets[b]..block_offsets[b+1]`
    /// is block `b`. Last entry is the row stride.
    block_offsets: Vec<usize>,
    rows: usize,
}

impl<'a> BlockPoints<'a> {
    /// Wraps `rows` samples with the given per-block sizes.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * Σ block_sizes` or a block is empty.
    pub fn new(data: &'a [f64], rows: usize, block_sizes: &[usize]) -> Self {
        assert!(!block_sizes.is_empty(), "BlockPoints: no blocks");
        let mut block_offsets = Vec::with_capacity(block_sizes.len() + 1);
        let mut acc = 0;
        block_offsets.push(0);
        for &s in block_sizes {
            assert!(s > 0, "BlockPoints: empty block");
            acc += s;
            block_offsets.push(acc);
        }
        assert_eq!(
            data.len(),
            rows * acc,
            "BlockPoints: data length does not match rows × stride"
        );
        BlockPoints {
            data,
            block_offsets,
            rows,
        }
    }

    /// Number of samples.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of blocks per sample.
    pub fn blocks(&self) -> usize {
        self.block_offsets.len() - 1
    }

    /// Row stride (joint dimension).
    pub fn stride(&self) -> usize {
        *self.block_offsets.last().unwrap()
    }

    /// One whole joint sample.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        let s = self.stride();
        &self.data[r * s..(r + 1) * s]
    }

    /// Block `b` of sample `r`.
    #[inline]
    pub fn block(&self, r: usize, b: usize) -> &[f64] {
        let s = self.stride();
        let row = &self.data[r * s..(r + 1) * s];
        &row[self.block_offsets[b]..self.block_offsets[b + 1]]
    }

    /// Max-over-blocks distance between samples `a` and `b` (not squared —
    /// block distances are L2 norms).
    pub fn block_max_dist(&self, a: usize, b: usize) -> f64 {
        self.block_max_dist_bounded(a, b, f64::INFINITY)
    }

    /// Like [`BlockPoints::block_max_dist`] but returns early with
    /// `f64::INFINITY` as soon as the running max exceeds `bound` — the
    /// pruning that makes the brute-force k-NN loop competitive.
    #[inline]
    pub fn block_max_dist_bounded(&self, a: usize, b: usize, bound: f64) -> f64 {
        let bound_sq = bound * bound;
        let mut max_sq: f64 = 0.0;
        for blk in 0..self.blocks() {
            let pa = self.block(a, blk);
            let pb = self.block(b, blk);
            let mut d2 = 0.0;
            for (x, y) in pa.iter().zip(pb) {
                let d = x - y;
                d2 += d * d;
            }
            if d2 > max_sq {
                max_sq = d2;
                if max_sq > bound_sq {
                    return f64::INFINITY;
                }
            }
        }
        max_sq.sqrt()
    }

    /// Per-block L2 distances between samples `a` and `b`.
    pub fn block_dists(&self, a: usize, b: usize) -> Vec<f64> {
        (0..self.blocks())
            .map(|blk| crate::dist_sq(self.block(a, blk), self.block(b, blk)).sqrt())
            .collect()
    }
}

/// For sample `q`, the indices and distances of its `k` nearest other
/// samples under the max-over-blocks metric, sorted ascending.
///
/// Self is excluded. Ties are broken by index so results are deterministic.
pub fn knn_block_max(points: &BlockPoints<'_>, q: usize, k: usize) -> Vec<(usize, f64)> {
    let m = points.rows();
    assert!(q < m);
    let k = k.min(m.saturating_sub(1));
    if k == 0 {
        return Vec::new();
    }
    // Bounded insertion into a small sorted buffer: k is tiny (≤ 10 in all
    // experiments), so insertion beats a heap.
    let mut best: Vec<(usize, f64)> = Vec::with_capacity(k + 1);
    let mut worst = f64::INFINITY;
    for j in 0..m {
        if j == q {
            continue;
        }
        let d = points.block_max_dist_bounded(q, j, worst);
        if d.is_finite() && (best.len() < k || d < worst) {
            let pos = best
                .binary_search_by(|(_, bd)| bd.partial_cmp(&d).unwrap())
                .unwrap_or_else(|p| p);
            best.insert(pos, (j, d));
            if best.len() > k {
                best.pop();
            }
            if best.len() == k {
                worst = best[k - 1].1;
            }
        }
    }
    best
}

/// Distance from sample `q` to its `k`-th nearest neighbour under the
/// max-over-blocks metric (`k = 1` is the nearest other sample).
pub fn kth_dist_block_max(points: &BlockPoints<'_>, q: usize, k: usize) -> f64 {
    knn_block_max(points, q, k)
        .last()
        .map(|&(_, d)| d)
        .unwrap_or(f64::INFINITY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn block_layout_accessors() {
        // 2 samples, blocks of sizes [2, 1].
        let data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let p = BlockPoints::new(&data, 2, &[2, 1]);
        assert_eq!(p.rows(), 2);
        assert_eq!(p.blocks(), 2);
        assert_eq!(p.stride(), 3);
        assert_eq!(p.block(0, 0), &[1.0, 2.0]);
        assert_eq!(p.block(0, 1), &[3.0]);
        assert_eq!(p.block(1, 0), &[4.0, 5.0]);
        assert_eq!(p.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn block_max_is_max_of_block_norms() {
        // Block 0 differs by (3,4) -> 5; block 1 differs by 1.
        let data = [0.0, 0.0, 0.0, 3.0, 4.0, 1.0];
        let p = BlockPoints::new(&data, 2, &[2, 1]);
        assert!((p.block_max_dist(0, 1) - 5.0).abs() < 1e-12);
        let dists = p.block_dists(0, 1);
        assert!((dists[0] - 5.0).abs() < 1e-12);
        assert!((dists[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bounded_dist_early_exit() {
        let data = [0.0, 0.0, 0.0, 3.0, 4.0, 1.0];
        let p = BlockPoints::new(&data, 2, &[2, 1]);
        assert!(p.block_max_dist_bounded(0, 1, 1.0).is_infinite());
        assert!((p.block_max_dist_bounded(0, 1, 10.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn knn_excludes_self_and_sorts() {
        // 4 samples on a line, single block of dim 1.
        let data = [0.0, 1.0, 3.0, 7.0];
        let p = BlockPoints::new(&data, 4, &[1]);
        let nn = knn_block_max(&p, 0, 3);
        assert_eq!(nn.len(), 3);
        assert_eq!(nn[0].0, 1);
        assert_eq!(nn[1].0, 2);
        assert_eq!(nn[2].0, 3);
        assert!((kth_dist_block_max(&p, 0, 2) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn knn_caps_at_available_points() {
        let data = [0.0, 1.0];
        let p = BlockPoints::new(&data, 2, &[1]);
        let nn = knn_block_max(&p, 0, 10);
        assert_eq!(nn.len(), 1);
    }

    /// Reference implementation: full sort of the max-block distances.
    fn knn_reference(p: &BlockPoints<'_>, q: usize, k: usize) -> Vec<(usize, f64)> {
        let mut all: Vec<(usize, f64)> = (0..p.rows())
            .filter(|&j| j != q)
            .map(|j| (j, p.block_max_dist(q, j)))
            .collect();
        all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn knn_matches_reference(
            rows in 2..40usize,
            k in 1..8usize,
            seed in 0..u64::MAX
        ) {
            let mut rng = sops_math::SplitMix64::new(seed);
            // 3 blocks of sizes 2, 2, 1 -> stride 5.
            let data: Vec<f64> = (0..rows * 5).map(|_| rng.next_range(-10.0, 10.0)).collect();
            let p = BlockPoints::new(&data, rows, &[2, 2, 1]);
            for q in 0..rows.min(5) {
                let got = knn_block_max(&p, q, k);
                let want = knn_reference(&p, q, k);
                prop_assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(&want) {
                    prop_assert!((g.1 - w.1).abs() < 1e-9, "{:?} vs {:?}", g, w);
                }
            }
        }

        #[test]
        fn block_max_is_a_metric(
            seed in 0..u64::MAX
        ) {
            let mut rng = sops_math::SplitMix64::new(seed);
            let data: Vec<f64> = (0..3 * 4).map(|_| rng.next_range(-5.0, 5.0)).collect();
            let p = BlockPoints::new(&data, 3, &[2, 2]);
            // Symmetry and triangle inequality on three points.
            let d01 = p.block_max_dist(0, 1);
            let d10 = p.block_max_dist(1, 0);
            let d02 = p.block_max_dist(0, 2);
            let d12 = p.block_max_dist(1, 2);
            prop_assert!((d01 - d10).abs() < 1e-12);
            prop_assert!(d02 <= d01 + d12 + 1e-9);
        }
    }
}
