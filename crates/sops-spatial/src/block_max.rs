//! k-NN search under the max-over-blocks metric of paper Eq. 19.
//!
//! The KSG multi-information estimator treats a joint sample
//! `w = (w₁, …, w_n)` (n observer variables, each a small vector) and uses
//! the metric
//!
//! ```text
//! ‖w′ − w‖ := max_i ‖w′_i − w_i‖₂
//! ```
//!
//! i.e. the L∞ product metric over blocks whose internal distance is
//! Euclidean. Two search strategies are provided, because the right tool
//! depends on the *joint* dimension:
//!
//! * [`knn_block_max`] / [`knn_block_max_into`] — a cache-friendly
//!   brute-force scan with an early-exit block loop. When the joint
//!   dimension is large (per-particle observers: 2n ≥ 40) space
//!   partitioning degenerates to a linear scan anyway (this matches
//!   standard KSG implementations, e.g. Kraskov's MILCA and JIDT in high
//!   dimension), and the pruned scan wins.
//! * [`knn_block_max_tree_into`] — an iterative (explicit-stack) kd-tree
//!   descent over the joint points. The splitting plane on any axis lower
//!   bounds the block-max metric (`‖w′ − w‖ ≥ |w′[a] − w[a]|` for every
//!   coordinate `a`), so standard pruning is sound. In low joint dimension
//!   (pairwise scalar MI is dim-2) this turns the `O(m²)` scan into
//!   `O(m log m)` — the adaptive choice is made by `sops-info`'s
//!   `InfoWorkspace`.
//!
//! Both searches lean on SoA layouts for the common all-scalar-blocks
//! case: the bounded distance kernel processes rows in fixed-width
//! dimension chunks, the tree descent scans leaf-contiguous row slabs
//! with a branch-free batch kernel, and [`ScalarLanes`] /
//! [`knn_block_max_lanes_into`] run the pruned scan over a
//! lane-transposed tile (eight candidates per vector op). Every variant
//! is **bit-identical** to the row-at-a-time reference — same
//! lexicographic `(distance, index)` tie-breaking, pinned by this
//! module's frozen-reference proptests — so callers route purely on
//! throughput.

use crate::kdtree::{KdTree, Node};

/// Prefix-offset storage for [`BlockPoints`]: owned by default, borrowed
/// from a caller scratch buffer on the allocation-free path.
#[derive(Debug, Clone)]
enum Offsets<'a> {
    Owned(Vec<usize>),
    Borrowed(&'a [usize]),
}

/// A set of `m` joint samples, each a concatenation of `blocks` blocks of
/// sizes `block_sizes` (in order), stored row-major.
#[derive(Debug, Clone)]
pub struct BlockPoints<'a> {
    data: &'a [f64],
    /// Prefix offsets into one row; `offsets[b]..offsets[b+1]` is block
    /// `b`. Last entry is the row stride.
    block_offsets: Offsets<'a>,
    rows: usize,
    /// `true` when every block is one-dimensional (the per-scalar-observer
    /// case) — enables the stride-direct Chebyshev fast path.
    all_scalar: bool,
}

/// Fills `out` with the prefix offsets of `block_sizes` (cleared first)
/// and returns the row stride.
fn fill_offsets(block_sizes: &[usize], out: &mut Vec<usize>) -> usize {
    assert!(!block_sizes.is_empty(), "BlockPoints: no blocks");
    out.clear();
    out.reserve(block_sizes.len() + 1);
    let mut acc = 0;
    out.push(0);
    for &s in block_sizes {
        assert!(s > 0, "BlockPoints: empty block");
        acc += s;
        out.push(acc);
    }
    acc
}

impl<'a> BlockPoints<'a> {
    /// Wraps `rows` samples with the given per-block sizes.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * Σ block_sizes` or a block is empty.
    pub fn new(data: &'a [f64], rows: usize, block_sizes: &[usize]) -> Self {
        let mut block_offsets = Vec::new();
        let acc = fill_offsets(block_sizes, &mut block_offsets);
        assert_eq!(
            data.len(),
            rows * acc,
            "BlockPoints: data length does not match rows × stride"
        );
        BlockPoints {
            data,
            block_offsets: Offsets::Owned(block_offsets),
            rows,
            all_scalar: block_sizes.iter().all(|&s| s == 1),
        }
    }

    /// Like [`BlockPoints::new`] but writing the prefix offsets into a
    /// caller-owned scratch buffer instead of allocating — the form used
    /// by per-pair loops that construct thousands of views per call.
    pub fn with_offset_buf(
        offset_buf: &'a mut Vec<usize>,
        data: &'a [f64],
        rows: usize,
        block_sizes: &[usize],
    ) -> Self {
        let acc = fill_offsets(block_sizes, offset_buf);
        assert_eq!(
            data.len(),
            rows * acc,
            "BlockPoints: data length does not match rows × stride"
        );
        BlockPoints {
            data,
            block_offsets: Offsets::Borrowed(offset_buf),
            rows,
            all_scalar: block_sizes.iter().all(|&s| s == 1),
        }
    }

    /// The prefix offsets (last entry is the row stride).
    #[inline]
    fn offs(&self) -> &[usize] {
        match &self.block_offsets {
            Offsets::Owned(v) => v,
            Offsets::Borrowed(s) => s,
        }
    }

    /// Number of samples.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of blocks per sample.
    pub fn blocks(&self) -> usize {
        self.offs().len() - 1
    }

    /// Row stride (joint dimension).
    pub fn stride(&self) -> usize {
        *self.offs().last().unwrap()
    }

    /// One whole joint sample.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        let s = self.stride();
        &self.data[r * s..(r + 1) * s]
    }

    /// Block `b` of sample `r`.
    #[inline]
    pub fn block(&self, r: usize, b: usize) -> &[f64] {
        let offs = self.offs();
        let s = *offs.last().unwrap();
        let row = &self.data[r * s..(r + 1) * s];
        &row[offs[b]..offs[b + 1]]
    }

    /// Max-over-blocks distance between samples `a` and `b` (not squared —
    /// block distances are L2 norms).
    pub fn block_max_dist(&self, a: usize, b: usize) -> f64 {
        self.block_max_dist_bounded(a, b, f64::INFINITY)
    }

    /// `true` when every block is one-dimensional — callers may then take
    /// the stride-direct Chebyshev lane paths ([`ScalarLanes`]).
    #[inline]
    pub fn all_scalar(&self) -> bool {
        self.all_scalar
    }

    /// Like [`BlockPoints::block_max_dist`] but returns early with
    /// `f64::INFINITY` as soon as the running max exceeds `bound` — the
    /// pruning that makes the brute-force k-NN loop competitive.
    #[inline]
    pub fn block_max_dist_bounded(&self, a: usize, b: usize, bound: f64) -> f64 {
        let s = self.stride();
        self.row_dist_bounded(
            &self.data[a * s..(a + 1) * s],
            &self.data[b * s..(b + 1) * s],
            bound,
        )
    }

    /// [`BlockPoints::block_max_dist_bounded`] over two explicit rows of
    /// this layout — the form the kd-tree descent uses to scan its
    /// leaf-contiguous row copies. The rows must have length `stride()`.
    #[inline]
    pub(crate) fn row_dist_bounded(&self, ra: &[f64], rb: &[f64], bound: f64) -> f64 {
        let bound_sq = bound * bound;
        let max_sq = if self.all_scalar {
            cheb_max_sq_bounded(ra, rb, bound_sq)
        } else {
            block_rows_max_sq_bounded(self.offs(), ra, rb, bound_sq)
        };
        // `√INFINITY = INFINITY`, so the pruned sentinel passes through.
        max_sq.sqrt()
    }

    /// Per-block L2 distances between samples `a` and `b`.
    pub fn block_dists(&self, a: usize, b: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.blocks()];
        self.block_dists_into(a, b, &mut out);
        out
    }

    /// [`BlockPoints::block_dists`] into a caller-provided slice of length
    /// `blocks()` — the allocation-free form the KSG hot loop uses.
    pub fn block_dists_into(&self, a: usize, b: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.blocks(), "block_dists_into: output len");
        if self.all_scalar {
            // One coordinate per block: skip the per-block slicing and run
            // the whole row as contiguous lanes. `dist_sq` on a 1-element
            // slice computes `0.0 + d·d = d·d`, so this is the identical
            // floating-point expression.
            let s = self.stride();
            let ra = &self.data[a * s..(a + 1) * s];
            let rb = &self.data[b * s..(b + 1) * s];
            for ((x, y), slot) in ra.iter().zip(rb).zip(out) {
                let d = x - y;
                *slot = (d * d).sqrt();
            }
            return;
        }
        for (blk, slot) in out.iter_mut().enumerate() {
            *slot = crate::dist_sq(self.block(a, blk), self.block(b, blk)).sqrt();
        }
    }
}

/// Width of the fixed dimension chunks the Chebyshev kernels process: 8
/// `f64` lanes, one 512-bit vector on AVX-512 and two 256-bit ops on AVX2.
const DIM_CHUNK: usize = 8;

/// Chebyshev (all-scalar-blocks) squared distance between two rows with
/// the bounded early exit, computed over fixed-width dimension chunks:
/// each chunk's `d²` lanes max-reduce first, then fold into the running
/// max. Bit-identical to the dimension-at-a-time loop because `max` over
/// the non-negative `d²` values is exact and commutative, `f64::max`
/// skips NaN exactly like the `d2 > max` predicate, and the running max
/// is monotone — it ends above `bound_sq` iff it ever exceeds it, so the
/// chunk-boundary prune returns `INFINITY` in exactly the same cases as
/// the per-dimension check.
#[inline]
fn cheb_max_sq_bounded(ra: &[f64], rb: &[f64], bound_sq: f64) -> f64 {
    let mut max_sq: f64 = 0.0;
    let mut chunks = ra.chunks_exact(DIM_CHUNK).zip(rb.chunks_exact(DIM_CHUNK));
    for (ca, cb) in &mut chunks {
        let mut chunk_max: f64 = 0.0;
        for (x, y) in ca.iter().zip(cb) {
            let d = x - y;
            chunk_max = chunk_max.max(d * d);
        }
        if chunk_max > max_sq {
            max_sq = chunk_max;
            if max_sq > bound_sq {
                return f64::INFINITY;
            }
        }
    }
    let tail = ra.len() - ra.len() % DIM_CHUNK;
    for (x, y) in ra[tail..].iter().zip(&rb[tail..]) {
        let d = x - y;
        let d2 = d * d;
        if d2 > max_sq {
            max_sq = d2;
            if max_sq > bound_sq {
                return f64::INFINITY;
            }
        }
    }
    max_sq
}

/// Generic (mixed block sizes) squared block-max distance with the
/// bounded early exit. The per-block L2 sums accumulate in coordinate
/// order — reassociating them would change bits, so they stay scalar.
#[inline]
fn block_rows_max_sq_bounded(offs: &[usize], ra: &[f64], rb: &[f64], bound_sq: f64) -> f64 {
    let mut max_sq: f64 = 0.0;
    for w in offs.windows(2) {
        let mut d2 = 0.0;
        for (x, y) in ra[w[0]..w[1]].iter().zip(&rb[w[0]..w[1]]) {
            let d = x - y;
            d2 += d * d;
        }
        if d2 > max_sq {
            max_sq = d2;
            if max_sq > bound_sq {
                return f64::INFINITY;
            }
        }
    }
    max_sq
}

/// Candidate lanes per tile group of [`ScalarLanes`].
pub const LANES: usize = 8;

/// A lane-transposed copy of an all-scalar [`BlockPoints`] set for the
/// SoA k-NN scan ([`knn_block_max_lanes_into`]).
///
/// Samples are tiled in groups of [`LANES`]: group `g` stores dimension
/// `d` of candidates `g·LANES..(g+1)·LANES` as one contiguous 8-lane row
/// at `tile[(g·stride + d)·LANES..]`, so the scan kernel streams one
/// vector load per dimension instead of strided row gathers. Groups past
/// the end are padded with `INFINITY`, which every query prunes.
///
/// The transpose costs one pass over the data and is built once per KSG
/// term, amortized over the `m` queries that share it. Buffers are
/// reused across rebuilds (zero allocations once warm).
#[derive(Debug, Clone, Default)]
pub struct ScalarLanes {
    tile: Vec<f64>,
    rows: usize,
    stride: usize,
}

impl ScalarLanes {
    /// An empty tile; [`ScalarLanes::rebuild`] fills it.
    pub fn new() -> Self {
        ScalarLanes::default()
    }

    /// Re-tiles `points` (which must be all-scalar) into lane layout,
    /// reusing the buffer.
    ///
    /// # Panics
    ///
    /// Panics if `points` has a non-scalar block.
    pub fn rebuild(&mut self, points: &BlockPoints<'_>) {
        assert!(
            points.all_scalar(),
            "ScalarLanes: only all-scalar block sets have a lane layout"
        );
        let rows = points.rows();
        let stride = points.stride();
        self.rows = rows;
        self.stride = stride;
        let groups = rows.div_ceil(LANES);
        self.tile.clear();
        self.tile.resize(groups * stride * LANES, f64::INFINITY);
        for r in 0..rows {
            let (g, l) = (r / LANES, r % LANES);
            let base = g * stride * LANES;
            for (d, &v) in points.row(r).iter().enumerate() {
                self.tile[base + d * LANES + l] = v;
            }
        }
    }

    /// Buffer capacity (the zero-allocation contract hook).
    pub fn capacity_signature(&self) -> usize {
        self.tile.capacity()
    }
}

/// For sample `q`, the indices and distances of its `k` nearest other
/// samples under the max-over-blocks metric, sorted ascending.
///
/// Self is excluded. The result is **canonical**: the `k`
/// lexicographically smallest `(distance, index)` pairs, in that order —
/// ties at the boundary always resolve toward the smaller sample index,
/// independent of scan or traversal order. The scan and
/// [tree](knn_block_max_tree_into) searches therefore agree on *every*
/// input, duplicated/quantized samples included.
pub fn knn_block_max(points: &BlockPoints<'_>, q: usize, k: usize) -> Vec<(usize, f64)> {
    let mut best = Vec::new();
    knn_block_max_into(points, q, k, &mut best);
    best
}

/// [`knn_block_max`] into a caller-provided buffer (cleared first) — the
/// allocation-free form used per sample by the KSG hot loop.
pub fn knn_block_max_into(
    points: &BlockPoints<'_>,
    q: usize,
    k: usize,
    best: &mut Vec<(usize, f64)>,
) {
    best.clear();
    let m = points.rows();
    assert!(q < m);
    let k = k.min(m.saturating_sub(1));
    if k == 0 {
        return;
    }
    // Bounded insertion into a small sorted buffer: k is tiny (≤ 10 in all
    // experiments), so insertion beats a heap.
    let mut worst = f64::INFINITY;
    for j in 0..m {
        if j == q {
            continue;
        }
        let d = points.block_max_dist_bounded(q, j, worst);
        if d.is_finite() {
            offer_candidate(best, k, j, d, &mut worst);
        }
    }
}

/// [`knn_block_max_into`] over a [`ScalarLanes`] tile — the SoA form of
/// the pruned scan for all-scalar block sets, **bit-identical** to the
/// row-at-a-time scan on every input.
///
/// Per tile group the kernel accumulates all [`LANES`] running Chebyshev
/// maxima dimension-by-dimension (one contiguous 8-lane stream per
/// dimension — no branches, so the autovectorizer widens it), checking
/// every [`DIM_CHUNK`] dimensions whether *all* lanes already exceed the
/// group-entry bound `worst²` (then the whole group is pruned: `worst`
/// only shrinks, so the sequential scan returned `INFINITY` for each of
/// those candidates too). Surviving groups replay the sequential scan's
/// accept/skip decision per candidate in ascending index order with the
/// *current* `worst` — `acc > worst·worst` is exactly the condition under
/// which `block_max_dist_bounded` returns `INFINITY` (its running max is
/// monotone), and the exact `d²` values are bitwise equal to the scalar
/// loop's (commutative exact max of identical products). The offers
/// therefore arrive as the identical `(distance, index)` stream and the
/// result heap evolves identically — ties, quantized data and all.
pub fn knn_block_max_lanes_into(
    points: &BlockPoints<'_>,
    lanes: &ScalarLanes,
    q: usize,
    k: usize,
    best: &mut Vec<(usize, f64)>,
) {
    best.clear();
    let m = points.rows();
    assert!(q < m);
    assert!(
        lanes.rows == m && lanes.stride == points.stride(),
        "knn_block_max_lanes_into: lane tile does not match the point set"
    );
    let k = k.min(m.saturating_sub(1));
    if k == 0 {
        return;
    }
    let stride = lanes.stride;
    let qr = points.row(q);
    let mut worst = f64::INFINITY;
    let groups = m.div_ceil(LANES);
    for g in 0..groups {
        let tile = &lanes.tile[g * stride * LANES..(g + 1) * stride * LANES];
        let entry_bound_sq = worst * worst;
        let mut acc = [0.0f64; LANES];
        let mut pruned = false;
        let mut dim = 0;
        while dim < stride {
            let dend = (dim + DIM_CHUNK).min(stride);
            for d in dim..dend {
                let qd = qr[d];
                let lane = &tile[d * LANES..(d + 1) * LANES];
                for (a, &x) in acc.iter_mut().zip(lane) {
                    let diff = qd - x;
                    *a = a.max(diff * diff);
                }
            }
            dim = dend;
            // Group prune: partial maxima only grow, and `worst` only
            // shrinks below its group-entry value, so every lane already
            // above `entry_bound_sq` is a candidate the sequential
            // bounded scan rejected. (The query's own lane sits at 0 and
            // the padding lanes at INFINITY, so self never forces a
            // group to complete nor padding to survive.)
            if dim < stride && acc.iter().all(|&a| a > entry_bound_sq) {
                pruned = true;
                break;
            }
        }
        if pruned {
            continue;
        }
        for (l, &a) in acc.iter().enumerate() {
            let j = g * LANES + l;
            if j >= m {
                break;
            }
            if j == q {
                continue;
            }
            // Replay of `block_max_dist_bounded(q, j, worst)`'s outcome:
            // it returns INFINITY iff the full max exceeds worst².
            if a > worst * worst {
                continue;
            }
            let d = a.sqrt();
            if d.is_finite() {
                offer_candidate(best, k, j, d, &mut worst);
            }
        }
    }
}

/// Canonical bounded insertion shared by the scan and tree searches: keeps
/// the `k` lexicographically smallest `(distance, index)` pairs in sorted
/// order, whatever order candidates arrive in.
#[inline]
fn offer_candidate(best: &mut Vec<(usize, f64)>, k: usize, j: usize, d: f64, worst: &mut f64) {
    if best.len() == k {
        let (tail_j, tail_d) = best[k - 1];
        if d > tail_d || (d == tail_d && j > tail_j) {
            return;
        }
    }
    // Insert after equal-distance entries with smaller indices.
    let pos = best.partition_point(|&(bj, bd)| bd < d || (bd == d && bj < j));
    best.insert(pos, (j, d));
    if best.len() > k {
        best.pop();
    }
    if best.len() == k {
        *worst = best[k - 1].1;
    }
}

/// [`knn_block_max`] via an iterative kd-tree descent over the joint
/// points — the low-joint-dimension fast path.
///
/// `tree` must index the same `m` joint rows as `points` (same order,
/// `dim == points.stride()`). Pruning is sound because any splitting plane
/// lower-bounds the block-max metric: a point on the far side of a plane
/// at axis distance `|δ|` has some coordinate at least `|δ|` away, hence
/// a block L2 distance — and so a block-max distance — of at least `|δ|`.
/// The traversal is iterative with an explicit stack (`stack`, reused by
/// callers) rather than recursive, so deep unbalanced trees cost no call
/// frames and the scratch is visible to the zero-allocation contract.
pub fn knn_block_max_tree_into(
    points: &BlockPoints<'_>,
    tree: &KdTree,
    q: usize,
    k: usize,
    stack: &mut Vec<(u32, f64)>,
    best: &mut Vec<(usize, f64)>,
) {
    best.clear();
    let m = points.rows();
    assert!(q < m);
    assert_eq!(
        tree.dim(),
        points.stride(),
        "knn_block_max_tree_into: tree dimension must equal the joint stride"
    );
    assert_eq!(
        tree.len(),
        m,
        "knn_block_max_tree_into: tree must index the same samples"
    );
    let k = k.min(m.saturating_sub(1));
    if k == 0 {
        return;
    }
    let query = points.row(q);
    let mut worst = f64::INFINITY;
    stack.clear();
    stack.push((0u32, 0.0f64));
    while let Some((start_node, lower)) = stack.pop() {
        // The bound was computed when the node was deferred; the candidate
        // set has only tightened since. `>` not `>=`: a subtree at axis
        // distance exactly `worst` can still hold an equal-distance
        // candidate with a smaller index, which canonically wins the tie.
        if best.len() == k && lower > worst {
            continue;
        }
        let mut node = start_node;
        loop {
            match &tree.nodes[node as usize] {
                Node::Leaf { start, end } => {
                    let (s, e) = (*start as usize, *end as usize);
                    let sdim = points.stride();
                    // The tree's `sorted` copy lays this leaf's rows out
                    // contiguously — same values as `points.row(j)` bit
                    // for bit, without the `order`-indirected gather, so
                    // the scan streams instead of cache-missing.
                    let slab = &tree.sorted[s * sdim..e * sdim];
                    if points.all_scalar() {
                        // Batched leaf: compute every row's exact
                        // Chebyshev `d²` branch-free (the max over the
                        // non-negative squares is exact and commutative,
                        // so the values match the bounded scan's bit for
                        // bit), then replay the bounded scan's
                        // accept/skip decision per candidate in visit
                        // order — `d² > worst²` is exactly the condition
                        // under which it returned `INFINITY`.
                        let cnt = e - s;
                        let mut d2s = [0.0f64; crate::kdtree::LEAF_SIZE];
                        for (t, mx) in d2s[..cnt].iter_mut().enumerate() {
                            let row = &slab[t * sdim..(t + 1) * sdim];
                            let mut m: f64 = 0.0;
                            for (qd, x) in query.iter().zip(row) {
                                let diff = qd - x;
                                m = m.max(diff * diff);
                            }
                            *mx = m;
                        }
                        for (t, &i) in tree.order[s..e].iter().enumerate() {
                            let j = i as usize;
                            if j == q {
                                continue;
                            }
                            let a = d2s[t];
                            if a > worst * worst {
                                continue;
                            }
                            let d = a.sqrt();
                            if d.is_finite() {
                                offer_candidate(best, k, j, d, &mut worst);
                            }
                        }
                        break;
                    }
                    for (t, &i) in tree.order[s..e].iter().enumerate() {
                        let j = i as usize;
                        if j == q {
                            continue;
                        }
                        let row = &slab[t * sdim..(t + 1) * sdim];
                        let d = points.row_dist_bounded(query, row, worst);
                        if d.is_finite() {
                            offer_candidate(best, k, j, d, &mut worst);
                        }
                    }
                    break;
                }
                Node::Split { axis, value, right } => {
                    let delta = query[*axis as usize] - value;
                    let (near, far) = if delta < 0.0 {
                        (node + 1, *right)
                    } else {
                        (*right, node + 1)
                    };
                    let axis_dist = delta.abs();
                    if best.len() < k || axis_dist <= worst {
                        stack.push((far, axis_dist));
                    }
                    node = near;
                }
            }
        }
    }
}

/// Distance from sample `q` to its `k`-th nearest neighbour under the
/// max-over-blocks metric (`k = 1` is the nearest other sample).
pub fn kth_dist_block_max(points: &BlockPoints<'_>, q: usize, k: usize) -> f64 {
    knn_block_max(points, q, k)
        .last()
        .map(|&(_, d)| d)
        .unwrap_or(f64::INFINITY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn block_layout_accessors() {
        // 2 samples, blocks of sizes [2, 1].
        let data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let p = BlockPoints::new(&data, 2, &[2, 1]);
        assert_eq!(p.rows(), 2);
        assert_eq!(p.blocks(), 2);
        assert_eq!(p.stride(), 3);
        assert_eq!(p.block(0, 0), &[1.0, 2.0]);
        assert_eq!(p.block(0, 1), &[3.0]);
        assert_eq!(p.block(1, 0), &[4.0, 5.0]);
        assert_eq!(p.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn block_max_is_max_of_block_norms() {
        // Block 0 differs by (3,4) -> 5; block 1 differs by 1.
        let data = [0.0, 0.0, 0.0, 3.0, 4.0, 1.0];
        let p = BlockPoints::new(&data, 2, &[2, 1]);
        assert!((p.block_max_dist(0, 1) - 5.0).abs() < 1e-12);
        let dists = p.block_dists(0, 1);
        assert!((dists[0] - 5.0).abs() < 1e-12);
        assert!((dists[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bounded_dist_early_exit() {
        let data = [0.0, 0.0, 0.0, 3.0, 4.0, 1.0];
        let p = BlockPoints::new(&data, 2, &[2, 1]);
        assert!(p.block_max_dist_bounded(0, 1, 1.0).is_infinite());
        assert!((p.block_max_dist_bounded(0, 1, 10.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn knn_excludes_self_and_sorts() {
        // 4 samples on a line, single block of dim 1.
        let data = [0.0, 1.0, 3.0, 7.0];
        let p = BlockPoints::new(&data, 4, &[1]);
        let nn = knn_block_max(&p, 0, 3);
        assert_eq!(nn.len(), 3);
        assert_eq!(nn[0].0, 1);
        assert_eq!(nn[1].0, 2);
        assert_eq!(nn[2].0, 3);
        assert!((kth_dist_block_max(&p, 0, 2) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn knn_caps_at_available_points() {
        let data = [0.0, 1.0];
        let p = BlockPoints::new(&data, 2, &[1]);
        let nn = knn_block_max(&p, 0, 10);
        assert_eq!(nn.len(), 1);
    }

    /// Frozen pre-SoA `block_max_dist_bounded`: the dimension-at-a-time
    /// loop, verbatim. The chunked kernels must reproduce it bit for bit.
    fn frozen_bounded_dist(p: &BlockPoints<'_>, a: usize, b: usize, bound: f64) -> f64 {
        let bound_sq = bound * bound;
        let ra = p.row(a);
        let rb = p.row(b);
        let mut max_sq: f64 = 0.0;
        if p.all_scalar() {
            for (x, y) in ra.iter().zip(rb) {
                let d = x - y;
                let d2 = d * d;
                if d2 > max_sq {
                    max_sq = d2;
                    if max_sq > bound_sq {
                        return f64::INFINITY;
                    }
                }
            }
        } else {
            for w in p.offs().windows(2) {
                let mut d2 = 0.0;
                for (x, y) in ra[w[0]..w[1]].iter().zip(&rb[w[0]..w[1]]) {
                    let d = x - y;
                    d2 += d * d;
                }
                if d2 > max_sq {
                    max_sq = d2;
                    if max_sq > bound_sq {
                        return f64::INFINITY;
                    }
                }
            }
        }
        max_sq.sqrt()
    }

    /// Frozen pre-SoA scan kNN (the row-at-a-time pruned loop, verbatim),
    /// kept as the reference the lane kernel is pinned against.
    fn frozen_scan_knn(p: &BlockPoints<'_>, q: usize, k: usize) -> Vec<(usize, f64)> {
        let mut best = Vec::new();
        let m = p.rows();
        let k = k.min(m.saturating_sub(1));
        if k == 0 {
            return best;
        }
        let mut worst = f64::INFINITY;
        for j in 0..m {
            if j == q {
                continue;
            }
            let d = frozen_bounded_dist(p, q, j, worst);
            if d.is_finite() {
                offer_candidate(&mut best, k, j, d, &mut worst);
            }
        }
        best
    }

    #[test]
    fn lanes_knn_remainder_sizes_match_scan_exactly() {
        // Row counts straddling the lane width and strides straddling the
        // dim chunk — every padding/remainder combination of the tile.
        let mut rng = sops_math::SplitMix64::new(41);
        for rows in [LANES - 1, LANES, LANES + 1, 3 * LANES - 1, 3 * LANES + 1] {
            for stride in [1usize, DIM_CHUNK - 1, DIM_CHUNK, DIM_CHUNK + 1, 40] {
                let data: Vec<f64> = (0..rows * stride)
                    .map(|_| rng.next_range(-5.0, 5.0))
                    .collect();
                let sizes = vec![1usize; stride];
                let p = BlockPoints::new(&data, rows, &sizes);
                let mut lanes = ScalarLanes::new();
                lanes.rebuild(&p);
                let mut best = Vec::new();
                for q in 0..rows {
                    for k in [1usize, 4, rows] {
                        knn_block_max_lanes_into(&p, &lanes, q, k, &mut best);
                        let want = frozen_scan_knn(&p, q, k);
                        assert_eq!(best.len(), want.len(), "rows={rows} stride={stride}");
                        for (g, w) in best.iter().zip(&want) {
                            assert_eq!(g.0, w.0, "rows={rows} stride={stride} q={q} k={k}");
                            assert_eq!(g.1.to_bits(), w.1.to_bits());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn scalar_lanes_rebuild_is_allocation_stable() {
        let mut rng = sops_math::SplitMix64::new(7);
        let data: Vec<f64> = (0..90 * 11).map(|_| rng.next_range(-1.0, 1.0)).collect();
        let sizes = vec![1usize; 11];
        let mut lanes = ScalarLanes::new();
        lanes.rebuild(&BlockPoints::new(&data, 90, &sizes));
        let cap = lanes.capacity_signature();
        for rows in [90usize, 64, 81, 90] {
            lanes.rebuild(&BlockPoints::new(&data[..rows * 11], rows, &sizes));
            assert_eq!(lanes.capacity_signature(), cap, "rebuild must not allocate");
        }
    }

    /// Reference implementation: full sort of the max-block distances.
    fn knn_reference(p: &BlockPoints<'_>, q: usize, k: usize) -> Vec<(usize, f64)> {
        let mut all: Vec<(usize, f64)> = (0..p.rows())
            .filter(|&j| j != q)
            .map(|j| (j, p.block_max_dist(q, j)))
            .collect();
        all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    #[test]
    fn into_variants_match_allocating_forms() {
        let data = [0.0, 0.0, 0.0, 3.0, 4.0, 1.0, 1.0, 1.0, 2.0];
        let p = BlockPoints::new(&data, 3, &[2, 1]);
        let mut dists = [0.0f64; 2];
        p.block_dists_into(0, 1, &mut dists);
        assert_eq!(dists.to_vec(), p.block_dists(0, 1));
        let mut best = Vec::new();
        knn_block_max_into(&p, 0, 2, &mut best);
        assert_eq!(best, knn_block_max(&p, 0, 2));
    }

    #[test]
    fn offset_buf_constructor_matches_owned() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut buf = Vec::new();
        let p = BlockPoints::with_offset_buf(&mut buf, &data, 2, &[2, 1]);
        let q = BlockPoints::new(&data, 2, &[2, 1]);
        assert_eq!(p.stride(), q.stride());
        assert_eq!(p.blocks(), q.blocks());
        assert_eq!(p.block(1, 0), q.block(1, 0));
        assert_eq!(
            p.block_max_dist(0, 1).to_bits(),
            q.block_max_dist(0, 1).to_bits()
        );
    }

    #[test]
    fn tree_search_matches_scan_on_line() {
        let data = [0.0, 1.0, 3.0, 7.0, 2.5];
        let p = BlockPoints::new(&data, 5, &[1]);
        let tree = KdTree::build(1, &data);
        let mut stack = Vec::new();
        let mut best = Vec::new();
        for q in 0..5 {
            for k in 1..5 {
                knn_block_max_tree_into(&p, &tree, q, k, &mut stack, &mut best);
                assert_eq!(best, knn_block_max(&p, q, k), "q={q} k={k}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn tree_search_matches_scan(
            rows in 2..60usize,
            k in 1..8usize,
            seed in 0..u64::MAX
        ) {
            let mut rng = sops_math::SplitMix64::new(seed);
            // 2 blocks of sizes 1, 2 -> stride 3 (mixed scalar/vector).
            let data: Vec<f64> = (0..rows * 3).map(|_| rng.next_range(-10.0, 10.0)).collect();
            let p = BlockPoints::new(&data, rows, &[1, 2]);
            let tree = KdTree::build(3, &data);
            let mut stack = Vec::new();
            let mut best = Vec::new();
            for q in 0..rows.min(6) {
                knn_block_max_tree_into(&p, &tree, q, k, &mut stack, &mut best);
                let want = knn_block_max(&p, q, k);
                prop_assert_eq!(best.len(), want.len());
                for (g, w) in best.iter().zip(&want) {
                    prop_assert_eq!(g.0, w.0, "{:?} vs {:?}", best, want);
                    prop_assert_eq!(g.1.to_bits(), w.1.to_bits());
                }
            }
        }

        /// Quantized coordinates force massive distance ties: the scan,
        /// the tree descent, and the canonical sort-based reference must
        /// still agree exactly — indices included.
        #[test]
        fn tree_and_scan_agree_canonically_under_ties(
            rows in 4..50usize,
            k in 1..8usize,
            seed in 0..u64::MAX
        ) {
            let mut rng = sops_math::SplitMix64::new(seed);
            let data: Vec<f64> = (0..rows * 2)
                .map(|_| (rng.next_range(-3.0, 3.0)).round())
                .collect();
            let p = BlockPoints::new(&data, rows, &[1, 1]);
            let tree = KdTree::build(2, &data);
            let mut stack = Vec::new();
            let mut best = Vec::new();
            for q in 0..rows.min(8) {
                let scan = knn_block_max(&p, q, k);
                let want = knn_reference(&p, q, k);
                prop_assert_eq!(&scan, &want, "scan vs canonical reference, q={}", q);
                knn_block_max_tree_into(&p, &tree, q, k, &mut stack, &mut best);
                prop_assert_eq!(&best, &want, "tree vs canonical reference, q={}", q);
            }
        }

        #[test]
        fn knn_matches_reference(
            rows in 2..40usize,
            k in 1..8usize,
            seed in 0..u64::MAX
        ) {
            let mut rng = sops_math::SplitMix64::new(seed);
            // 3 blocks of sizes 2, 2, 1 -> stride 5.
            let data: Vec<f64> = (0..rows * 5).map(|_| rng.next_range(-10.0, 10.0)).collect();
            let p = BlockPoints::new(&data, rows, &[2, 2, 1]);
            for q in 0..rows.min(5) {
                let got = knn_block_max(&p, q, k);
                let want = knn_reference(&p, q, k);
                prop_assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(&want) {
                    prop_assert!((g.1 - w.1).abs() < 1e-9, "{:?} vs {:?}", g, w);
                }
            }
        }

        /// The chunked bounded-distance kernels (scalar Chebyshev lanes
        /// and the generic block loop) against the frozen pre-SoA
        /// dimension-at-a-time implementation, bit for bit — bounds
        /// included, on continuous and quantized (tie-heavy) data.
        #[test]
        fn chunked_bounded_dist_bit_identical_to_frozen(
            rows in 2..24usize,
            stride in 1..24usize,
            seed in 0..u64::MAX
        ) {
            let quantize = seed & 1 == 0;
            let mut rng = sops_math::SplitMix64::new(seed);
            let data: Vec<f64> = (0..rows * stride)
                .map(|_| {
                    let v = rng.next_range(-4.0, 4.0);
                    if quantize { v.round() } else { v }
                })
                .collect();
            let scalar_sizes = vec![1usize; stride];
            let mixed_sizes = if stride >= 3 {
                vec![1usize, 2, stride - 3].into_iter().filter(|&s| s > 0).collect()
            } else {
                scalar_sizes.clone()
            };
            for sizes in [scalar_sizes, mixed_sizes] {
                let p = BlockPoints::new(&data, rows, &sizes);
                for a in 0..rows.min(4) {
                    for b in 0..rows {
                        for bound in [f64::INFINITY, 2.0, 0.5, 0.0] {
                            prop_assert_eq!(
                                p.block_max_dist_bounded(a, b, bound).to_bits(),
                                frozen_bounded_dist(&p, a, b, bound).to_bits(),
                                "a={} b={} bound={} sizes={:?}", a, b, bound, &sizes
                            );
                        }
                    }
                }
            }
        }

        /// The SoA lane scan against the frozen row-at-a-time scan:
        /// identical indices and bit-identical distances on continuous
        /// and quantized data, all remainder geometries.
        #[test]
        fn lanes_knn_bit_identical_to_frozen_scan(
            rows in 2..40usize,
            stride in 1..20usize,
            k in 1..8usize,
            seed in 0..u64::MAX
        ) {
            let quantize = seed & 1 == 0;
            let mut rng = sops_math::SplitMix64::new(seed);
            let data: Vec<f64> = (0..rows * stride)
                .map(|_| {
                    let v = rng.next_range(-3.0, 3.0);
                    if quantize { v.round() } else { v }
                })
                .collect();
            let sizes = vec![1usize; stride];
            let p = BlockPoints::new(&data, rows, &sizes);
            let mut lanes = ScalarLanes::new();
            lanes.rebuild(&p);
            let mut best = Vec::new();
            for q in 0..rows.min(6) {
                knn_block_max_lanes_into(&p, &lanes, q, k, &mut best);
                let want = frozen_scan_knn(&p, q, k);
                prop_assert_eq!(best.len(), want.len());
                for (g, w) in best.iter().zip(&want) {
                    prop_assert_eq!(g.0, w.0, "{:?} vs {:?}", &best, &want);
                    prop_assert_eq!(g.1.to_bits(), w.1.to_bits());
                }
            }
        }

        #[test]
        fn block_max_is_a_metric(
            seed in 0..u64::MAX
        ) {
            let mut rng = sops_math::SplitMix64::new(seed);
            let data: Vec<f64> = (0..3 * 4).map(|_| rng.next_range(-5.0, 5.0)).collect();
            let p = BlockPoints::new(&data, 3, &[2, 2]);
            // Symmetry and triangle inequality on three points.
            let d01 = p.block_max_dist(0, 1);
            let d10 = p.block_max_dist(1, 0);
            let d02 = p.block_max_dist(0, 2);
            let d12 = p.block_max_dist(1, 2);
            prop_assert!((d01 - d10).abs() < 1e-12);
            prop_assert!(d02 <= d01 + d12 + 1e-9);
        }
    }
}
