//! Brute-force `O(n²)` reference implementations.
//!
//! These are the ground truth the property tests compare [`crate::KdTree`]
//! and [`crate::CellGrid`] against, and the fallback the estimators use for
//! very small inputs where building an index costs more than it saves.

use crate::dist_sq;

/// Index and squared distance of the nearest point to `query`, excluding
/// indices for which `skip` returns `true`. `None` if all points are
/// skipped or the set is empty.
pub fn nearest_excluding(
    dim: usize,
    points: &[f64],
    query: &[f64],
    skip: impl Fn(usize) -> bool,
) -> Option<(usize, f64)> {
    assert_eq!(query.len(), dim);
    let n = points.len() / dim;
    let mut best: Option<(usize, f64)> = None;
    for i in 0..n {
        if skip(i) {
            continue;
        }
        let d = dist_sq(&points[i * dim..(i + 1) * dim], query);
        if best.is_none_or(|(_, bd)| d < bd) {
            best = Some((i, d));
        }
    }
    best
}

/// Nearest point to `query` (no exclusions).
pub fn nearest(dim: usize, points: &[f64], query: &[f64]) -> Option<(usize, f64)> {
    nearest_excluding(dim, points, query, |_| false)
}

/// The `k` nearest points to `query`, sorted by ascending squared distance
/// (ties broken by index). Returns fewer than `k` entries if the set is
/// smaller.
pub fn knn(dim: usize, points: &[f64], query: &[f64], k: usize) -> Vec<(usize, f64)> {
    assert_eq!(query.len(), dim);
    let n = points.len() / dim;
    let mut all: Vec<(usize, f64)> = (0..n)
        .map(|i| (i, dist_sq(&points[i * dim..(i + 1) * dim], query)))
        .collect();
    all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

/// Number of points with distance to `query` strictly less than `radius`.
///
/// The strict inequality matches the count `cᵢ` of paper Eq. 20.
pub fn count_within_strict(dim: usize, points: &[f64], query: &[f64], radius: f64) -> usize {
    let r2 = radius * radius;
    let n = points.len() / dim;
    (0..n)
        .filter(|&i| dist_sq(&points[i * dim..(i + 1) * dim], query) < r2)
        .count()
}

/// Number of points with distance to `query` less than or equal `radius`.
pub fn count_within_inclusive(dim: usize, points: &[f64], query: &[f64], radius: f64) -> usize {
    let r2 = radius * radius;
    let n = points.len() / dim;
    (0..n)
        .filter(|&i| dist_sq(&points[i * dim..(i + 1) * dim], query) <= r2)
        .count()
}

/// All unordered pairs `(i, j)`, `i < j`, with distance ≤ `radius`, in
/// lexicographic order.
pub fn pairs_within(dim: usize, points: &[f64], radius: f64) -> Vec<(usize, usize)> {
    let r2 = radius * radius;
    let n = points.len() / dim;
    let mut out = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if dist_sq(
                &points[i * dim..(i + 1) * dim],
                &points[j * dim..(j + 1) * dim],
            ) <= r2
            {
                out.push((i, j));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const PTS: [f64; 10] = [0.0, 0.0, 1.0, 0.0, 0.0, 2.0, 5.0, 5.0, -1.0, -1.0];

    #[test]
    fn nearest_finds_closest() {
        let (i, d2) = nearest(2, &PTS, &[0.9, 0.1]).unwrap();
        assert_eq!(i, 1);
        assert!((d2 - 0.02).abs() < 1e-12);
    }

    #[test]
    fn nearest_excluding_skips() {
        let (i, _) = nearest_excluding(2, &PTS, &[0.9, 0.1], |i| i == 1).unwrap();
        assert_eq!(i, 0);
        assert!(nearest_excluding(2, &PTS, &[0.0, 0.0], |_| true).is_none());
    }

    #[test]
    fn knn_ordering_and_truncation() {
        let nn = knn(2, &PTS, &[0.0, 0.0], 3);
        assert_eq!(nn.len(), 3);
        assert_eq!(nn[0].0, 0);
        assert_eq!(nn[1].0, 1);
        // (0,2) at d2=4 before (-1,-1) at d2=2? No: (-1,-1) has d2=2 < 4.
        assert_eq!(nn[2].0, 4);
        let all = knn(2, &PTS, &[0.0, 0.0], 99);
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn count_strict_vs_inclusive_on_boundary() {
        // Point 1 is at distance exactly 1 from origin.
        assert_eq!(count_within_strict(2, &PTS, &[0.0, 0.0], 1.0), 1); // only itself-like origin point
        assert_eq!(count_within_inclusive(2, &PTS, &[0.0, 0.0], 1.0), 2);
    }

    #[test]
    fn pairs_within_small() {
        let pairs = pairs_within(2, &PTS, 1.5);
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(0, 4)));
        assert!(!pairs.contains(&(0, 3)));
    }
}
