//! Dynamic-dimension kd-tree.
//!
//! A classic median-split kd-tree over points stored in a flat `Vec<f64>`.
//! Dimensions in this workspace are small (2 for particle positions, up to
//! ~10 for coarse observer blocks), where kd-trees shine. Queries:
//!
//! * [`KdTree::nearest`] / [`KdTree::knn`] — used by ICP correspondences;
//! * [`KdTree::count_within`] — the strict range count `cᵢ` of paper
//!   Eq. 20 (one call per sample per observer inside the KSG estimator);
//! * [`KdTree::range_indices`] — neighbourhood retrieval for diagnostics.
//!
//! The tree is immutable after construction; the simulator's per-step
//! neighbour search uses [`crate::CellGrid`] instead, which is cheaper to
//! rebuild every step.

use crate::dist_sq;

/// Maximum number of points in a leaf node; below this, linear scan beats
/// further splitting (measured with the `kdtree` Criterion bench).
pub(crate) const LEAF_SIZE: usize = 12;

#[derive(Debug, Clone)]
pub(crate) enum Node {
    Leaf {
        /// Range into `KdTree::order`.
        start: u32,
        end: u32,
    },
    Split {
        axis: u8,
        value: f64,
        /// Index of the right child in `KdTree::nodes`; the left child is
        /// always `self + 1` (pre-order layout).
        right: u32,
    },
}

/// Immutable kd-tree over `n` points of dimension `dim`.
///
/// The tree cannot be mutated point-by-point, but it can be
/// [rebuilt in place](KdTree::rebuild) over a fresh point set without
/// giving up its buffers — the contract persistent engines
/// (`sops_sim::ForceWorkspace`, `sops_info`'s `InfoWorkspace`) rely on
/// for zero steady-state allocations.
#[derive(Debug, Clone)]
pub struct KdTree {
    dim: usize,
    pub(crate) points: Vec<f64>,
    /// Permutation of point indices, partitioned recursively.
    pub(crate) order: Vec<u32>,
    /// The point rows permuted into `order` order, so every leaf's points
    /// are one contiguous `(end − start) × dim` slab. Leaf scans over
    /// this copy (`sops_spatial::block_max`'s tree descent) read a
    /// straight stream instead of gathering `order`-indirected rows —
    /// the values are bitwise copies, so distances are unchanged.
    pub(crate) sorted: Vec<f64>,
    pub(crate) nodes: Vec<Node>,
    /// Per-axis bound scratch for `widest_axis` (2 × dim), reused across
    /// `build_node` calls so rebuilding never allocates.
    bounds_scratch: Vec<f64>,
}

impl KdTree {
    /// Builds a tree from `n * dim` coordinates in row-major layout.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`, `dim > 255`, or `points.len()` is not a
    /// multiple of `dim`.
    pub fn build(dim: usize, points: &[f64]) -> Self {
        let mut tree = KdTree {
            dim: dim.max(1),
            points: Vec::new(),
            order: Vec::new(),
            sorted: Vec::new(),
            nodes: Vec::with_capacity(2 * (points.len() / dim.max(1) / LEAF_SIZE + 1)),
            bounds_scratch: Vec::new(),
        };
        tree.rebuild(dim, points);
        tree
    }

    /// Re-indexes the tree over a new point set (possibly of a different
    /// dimension), reusing every internal buffer. Allocation-free once the
    /// buffers have grown to the workload size.
    ///
    /// # Panics
    ///
    /// Same contract as [`KdTree::build`].
    pub fn rebuild(&mut self, dim: usize, points: &[f64]) {
        assert!(dim > 0 && dim <= 255, "KdTree: unsupported dimension {dim}");
        assert_eq!(
            points.len() % dim,
            0,
            "KdTree: coordinate count not a multiple of dim"
        );
        let n = points.len() / dim;
        self.dim = dim;
        self.points.clear();
        self.points.extend_from_slice(points);
        self.order.clear();
        self.order.extend(0..n as u32);
        self.nodes.clear();
        if n > 0 {
            self.build_node(0, n);
        }
        self.sorted.clear();
        self.sorted.reserve(self.points.len());
        for &i in &self.order {
            let i = i as usize;
            self.sorted
                .extend_from_slice(&self.points[i * dim..(i + 1) * dim]);
        }
    }

    /// Capacities of the internal buffers — constant for a warmed-up tree
    /// driving a bounded workload (the zero-allocation contract).
    pub fn capacity_signature(&self) -> [usize; 5] {
        [
            self.points.capacity(),
            self.order.capacity(),
            self.sorted.capacity(),
            self.nodes.capacity(),
            self.bounds_scratch.capacity(),
        ]
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len() / self.dim
    }

    /// `true` if the tree holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Dimension of the indexed points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Coordinates of point `i` (original indexing).
    pub fn point(&self, i: usize) -> &[f64] {
        &self.points[i * self.dim..(i + 1) * self.dim]
    }

    fn build_node(&mut self, start: usize, end: usize) -> u32 {
        let id = self.nodes.len() as u32;
        if end - start <= LEAF_SIZE {
            self.nodes.push(Node::Leaf {
                start: start as u32,
                end: end as u32,
            });
            return id;
        }
        // Pick the axis with the largest spread — better balance than
        // cycling axes when the data is anisotropic (e.g. ring
        // configurations from the F1 force law).
        let axis = self.widest_axis(start, end);
        let mid = start + (end - start) / 2;
        let dim = self.dim;
        let pts = &self.points;
        self.order[start..end].select_nth_unstable_by(mid - start, |&a, &b| {
            let va = pts[a as usize * dim + axis];
            let vb = pts[b as usize * dim + axis];
            va.partial_cmp(&vb).expect("KdTree: NaN coordinate")
        });
        let value = self.points[self.order[mid] as usize * dim + axis];
        self.nodes.push(Node::Split {
            axis: axis as u8,
            value,
            right: 0, // patched after the left subtree is built
        });
        let _left = self.build_node(start, mid);
        let right = self.build_node(mid, end);
        if let Node::Split { right: r, .. } = &mut self.nodes[id as usize] {
            *r = right;
        }
        id
    }

    fn widest_axis(&mut self, start: usize, end: usize) -> usize {
        let dim = self.dim;
        self.bounds_scratch.clear();
        self.bounds_scratch.resize(2 * dim, 0.0);
        let KdTree {
            points,
            order,
            bounds_scratch,
            ..
        } = self;
        let (lo, hi) = bounds_scratch.split_at_mut(dim);
        lo.fill(f64::INFINITY);
        hi.fill(f64::NEG_INFINITY);
        for &i in &order[start..end] {
            let p = &points[i as usize * dim..(i as usize + 1) * dim];
            for d in 0..dim {
                lo[d] = lo[d].min(p[d]);
                hi[d] = hi[d].max(p[d]);
            }
        }
        let mut best = 0;
        let mut spread = -1.0;
        for d in 0..dim {
            let s = hi[d] - lo[d];
            if s > spread {
                spread = s;
                best = d;
            }
        }
        best
    }

    /// Index and squared distance of the nearest point to `query`,
    /// excluding indices for which `skip` returns `true`.
    pub fn nearest_excluding(
        &self,
        query: &[f64],
        skip: impl Fn(usize) -> bool,
    ) -> Option<(usize, f64)> {
        assert_eq!(query.len(), self.dim);
        if self.is_empty() {
            return None;
        }
        let mut best: Option<(usize, f64)> = None;
        self.nearest_rec(0, query, &skip, &mut best);
        best
    }

    /// Index and squared distance of the nearest point to `query`.
    pub fn nearest(&self, query: &[f64]) -> Option<(usize, f64)> {
        self.nearest_excluding(query, |_| false)
    }

    fn nearest_rec(
        &self,
        node: u32,
        query: &[f64],
        skip: &impl Fn(usize) -> bool,
        best: &mut Option<(usize, f64)>,
    ) {
        match &self.nodes[node as usize] {
            Node::Leaf { start, end } => {
                for &i in &self.order[*start as usize..*end as usize] {
                    let i = i as usize;
                    if skip(i) {
                        continue;
                    }
                    let d = dist_sq(self.point(i), query);
                    if best.is_none_or(|(bi, bd)| d < bd || (d == bd && i < bi)) {
                        *best = Some((i, d));
                    }
                }
            }
            Node::Split { axis, value, right } => {
                let delta = query[*axis as usize] - value;
                let (near, far) = if delta < 0.0 {
                    (node + 1, *right)
                } else {
                    (*right, node + 1)
                };
                self.nearest_rec(near, query, skip, best);
                if best.is_none_or(|(_, bd)| delta * delta < bd) {
                    self.nearest_rec(far, query, skip, best);
                }
            }
        }
    }

    /// The `k` nearest points to `query`, sorted by ascending squared
    /// distance (ties broken by index).
    pub fn knn(&self, query: &[f64], k: usize) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        self.knn_into(query, k, &mut out);
        out
    }

    /// [`KdTree::knn`] into a caller-provided buffer (cleared first) —
    /// allocation-free once the buffer has capacity `k`.
    pub fn knn_into(&self, query: &[f64], k: usize, out: &mut Vec<(usize, f64)>) {
        assert_eq!(query.len(), self.dim);
        out.clear();
        if k == 0 || self.is_empty() {
            return;
        }
        // `out` doubles as the bounded max-heap (worst candidate at the
        // root) during traversal, stored as `(index, dist_sq)`.
        self.knn_rec(0, query, k, out);
        out.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
    }

    fn knn_rec(&self, node: u32, query: &[f64], k: usize, heap: &mut Vec<(usize, f64)>) {
        match &self.nodes[node as usize] {
            Node::Leaf { start, end } => {
                for &i in &self.order[*start as usize..*end as usize] {
                    let i = i as usize;
                    let d = dist_sq(self.point(i), query);
                    heap_offer(heap, k, (i, d));
                }
            }
            Node::Split { axis, value, right } => {
                let delta = query[*axis as usize] - value;
                let (near, far) = if delta < 0.0 {
                    (node + 1, *right)
                } else {
                    (*right, node + 1)
                };
                self.knn_rec(near, query, k, heap);
                // `<=`, not `<`: a far subtree at axis distance exactly
                // equal to the current worst can still hold an
                // equal-distance point with a smaller index, which
                // canonically wins the tie (same rule as the block-max
                // tree search).
                if heap.len() < k || delta * delta <= heap[0].1 {
                    self.knn_rec(far, query, k, heap);
                }
            }
        }
    }

    /// Number of points with distance to `query` strictly less than
    /// `radius` (`strict = true`) or ≤ `radius` (`strict = false`).
    ///
    /// The strict variant is the count `cᵢ` of paper Eq. 20.
    pub fn count_within(&self, query: &[f64], radius: f64, strict: bool) -> usize {
        assert_eq!(query.len(), self.dim);
        if self.is_empty() || radius < 0.0 {
            return 0;
        }
        let r2 = radius * radius;
        let mut count = 0;
        self.count_rec(0, query, radius, r2, strict, &mut count);
        count
    }

    fn count_rec(
        &self,
        node: u32,
        query: &[f64],
        radius: f64,
        r2: f64,
        strict: bool,
        count: &mut usize,
    ) {
        match &self.nodes[node as usize] {
            Node::Leaf { start, end } => {
                for &i in &self.order[*start as usize..*end as usize] {
                    let d = dist_sq(self.point(i as usize), query);
                    if if strict { d < r2 } else { d <= r2 } {
                        *count += 1;
                    }
                }
            }
            Node::Split { axis, value, right } => {
                let delta = query[*axis as usize] - value;
                // Left subtree holds coordinates <= value; right >= value.
                if delta - radius <= 0.0 {
                    self.count_rec(node + 1, query, radius, r2, strict, count);
                }
                if delta + radius >= 0.0 {
                    self.count_rec(*right, query, radius, r2, strict, count);
                }
            }
        }
    }

    /// Indices of all points within `radius` of `query` (inclusive), in
    /// ascending index order.
    pub fn range_indices(&self, query: &[f64], radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.range_indices_into(query, radius, &mut out);
        out
    }

    /// [`KdTree::range_indices`] into a caller-provided buffer (cleared
    /// first) — the allocation-free form persistent engines use.
    pub fn range_indices_into(&self, query: &[f64], radius: f64, out: &mut Vec<usize>) {
        out.clear();
        self.for_each_within(query, radius, |i| out.push(i));
        out.sort_unstable();
    }

    /// Visits every point within `radius` of `query` (inclusive), in
    /// *tree* order — no result buffer and no sort, the form for range
    /// consumers whose statistic is order-independent (e.g. the
    /// conjunctive counts of the Frenzel–Pompe estimator). The visited
    /// set is exactly that of [`KdTree::range_indices`], which is a
    /// collect-and-sort wrapper over this visit.
    pub fn for_each_within(&self, query: &[f64], radius: f64, mut f: impl FnMut(usize)) {
        assert_eq!(query.len(), self.dim);
        if self.is_empty() || radius < 0.0 {
            return;
        }
        let r2 = radius * radius;
        self.for_each_rec(0, query, radius, r2, &mut f);
    }

    fn for_each_rec(
        &self,
        node: u32,
        query: &[f64],
        radius: f64,
        r2: f64,
        f: &mut impl FnMut(usize),
    ) {
        match &self.nodes[node as usize] {
            Node::Leaf { start, end } => {
                for &i in &self.order[*start as usize..*end as usize] {
                    if dist_sq(self.point(i as usize), query) <= r2 {
                        f(i as usize);
                    }
                }
            }
            Node::Split { axis, value, right } => {
                let delta = query[*axis as usize] - value;
                if delta - radius <= 0.0 {
                    self.for_each_rec(node + 1, query, radius, r2, f);
                }
                if delta + radius >= 0.0 {
                    self.for_each_rec(*right, query, radius, r2, f);
                }
            }
        }
    }
}

/// Lexicographically "worse" candidate ordering for the bounded max-heap:
/// larger squared distance first, distance ties broken by larger index.
#[inline]
fn heap_worse(a: (usize, f64), b: (usize, f64)) -> bool {
    a.1 > b.1 || (a.1 == b.1 && a.0 > b.0)
}

/// Offers a candidate to a bounded max-heap (worst entry at the root) that
/// keeps the `k` lexicographically smallest `(dist, index)` entries seen.
///
/// A single `O(log k)` sift replaces the full `sort_by` of the candidate
/// buffer the old leaf insertion performed on every accepted point — the
/// `kdtree/knn*` bench rows quantify the win.
#[inline]
fn heap_offer(heap: &mut Vec<(usize, f64)>, k: usize, cand: (usize, f64)) {
    if heap.len() < k {
        heap.push(cand);
        let mut i = heap.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if heap_worse(heap[i], heap[parent]) {
                heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    } else if heap_worse(heap[0], cand) {
        heap[0] = cand;
        let mut i = 0;
        loop {
            let l = 2 * i + 1;
            let r = l + 1;
            let mut m = i;
            if l < heap.len() && heap_worse(heap[l], heap[m]) {
                m = l;
            }
            if r < heap.len() && heap_worse(heap[r], heap[m]) {
                m = r;
            }
            if m == i {
                break;
            }
            heap.swap(i, m);
            i = m;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use proptest::prelude::*;

    fn grid_points(side: usize) -> Vec<f64> {
        let mut pts = Vec::new();
        for i in 0..side {
            for j in 0..side {
                pts.push(i as f64);
                pts.push(j as f64);
            }
        }
        pts
    }

    #[test]
    fn empty_tree() {
        let t = KdTree::build(2, &[]);
        assert!(t.is_empty());
        assert!(t.nearest(&[0.0, 0.0]).is_none());
        assert!(t.knn(&[0.0, 0.0], 3).is_empty());
        assert_eq!(t.count_within(&[0.0, 0.0], 1.0, true), 0);
    }

    #[test]
    fn single_point() {
        let t = KdTree::build(3, &[1.0, 2.0, 3.0]);
        assert_eq!(t.len(), 1);
        let (i, d) = t.nearest(&[1.0, 2.0, 4.0]).unwrap();
        assert_eq!(i, 0);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_on_grid() {
        let pts = grid_points(10);
        let t = KdTree::build(2, &pts);
        let (i, d) = t.nearest(&[3.2, 7.4]).unwrap();
        assert_eq!(t.point(i), &[3.0, 7.0]);
        assert!((d - (0.2f64 * 0.2 + 0.4 * 0.4)).abs() < 1e-12);
    }

    #[test]
    fn nearest_excluding_self_match() {
        let pts = [0.0, 0.0, 1.0, 1.0, 2.0, 2.0];
        let t = KdTree::build(2, &pts);
        let (i, _) = t.nearest_excluding(&[0.0, 0.0], |i| i == 0).unwrap();
        assert_eq!(i, 1);
    }

    #[test]
    fn knn_matches_brute_on_grid() {
        let pts = grid_points(8);
        let t = KdTree::build(2, &pts);
        for k in [1, 3, 7, 64, 100] {
            let got = t.knn(&[2.7, 3.1], k);
            let want = brute::knn(2, &pts, &[2.7, 3.1], k);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert!((g.1 - w.1).abs() < 1e-12, "k={k}: {g:?} vs {w:?}");
            }
        }
    }

    #[test]
    fn duplicate_points_counted_individually() {
        let pts = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let t = KdTree::build(2, &pts);
        assert_eq!(t.count_within(&[1.0, 1.0], 0.5, true), 3);
        let nn = t.knn(&[1.0, 1.0], 2);
        assert_eq!(nn.len(), 2);
    }

    #[test]
    fn strict_vs_inclusive_boundary() {
        let pts = [0.0, 0.0, 1.0, 0.0];
        let t = KdTree::build(2, &pts);
        assert_eq!(t.count_within(&[0.0, 0.0], 1.0, true), 1);
        assert_eq!(t.count_within(&[0.0, 0.0], 1.0, false), 2);
    }

    #[test]
    fn range_indices_sorted_and_complete() {
        let pts = grid_points(6);
        let t = KdTree::build(2, &pts);
        let got = t.range_indices(&[2.0, 2.0], 1.5);
        let want: Vec<usize> = (0..pts.len() / 2)
            .filter(|&i| crate::dist_sq(&pts[2 * i..2 * i + 2], &[2.0, 2.0]) <= 1.5 * 1.5)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn collinear_points() {
        // Degenerate geometry: all on the x-axis.
        let pts: Vec<f64> = (0..100).flat_map(|i| [i as f64, 0.0]).collect();
        let t = KdTree::build(2, &pts);
        let (i, _) = t.nearest(&[42.3, 0.0]).unwrap();
        assert_eq!(i, 42);
        assert_eq!(t.count_within(&[50.0, 0.0], 2.5, true), 5);
    }

    #[test]
    fn higher_dimension_queries() {
        // 4-D lattice corner points.
        let mut pts = Vec::new();
        for a in 0..3 {
            for b in 0..3 {
                for c in 0..3 {
                    for d in 0..3 {
                        pts.extend_from_slice(&[a as f64, b as f64, c as f64, d as f64]);
                    }
                }
            }
        }
        let t = KdTree::build(4, &pts);
        let q = [1.1, 0.9, 1.0, 1.0];
        let got = t.knn(&q, 5);
        let want = brute::knn(4, &pts, &q, 5);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.1 - w.1).abs() < 1e-12);
        }
    }

    #[test]
    fn rebuild_matches_fresh_build_and_never_allocates_when_warm() {
        let mut tree = KdTree::build(2, &grid_points(12));
        // Warm across the workload shapes, largest first.
        for side in [12usize, 8, 10] {
            tree.rebuild(2, &grid_points(side));
        }
        let sig = tree.capacity_signature();
        for round in 0..20 {
            let side = [12usize, 8, 10][round % 3];
            tree.rebuild(2, &grid_points(side));
            let fresh = KdTree::build(2, &grid_points(side));
            for k in [1usize, 5, 17] {
                assert_eq!(tree.knn(&[3.3, 4.1], k), fresh.knn(&[3.3, 4.1], k));
            }
            assert_eq!(
                tree.count_within(&[5.0, 5.0], 2.5, true),
                fresh.count_within(&[5.0, 5.0], 2.5, true)
            );
            assert_eq!(tree.capacity_signature(), sig, "rebuild must not allocate");
        }
    }

    #[test]
    fn rebuild_across_dimensions() {
        let mut tree = KdTree::build(2, &grid_points(4));
        tree.rebuild(3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(tree.dim(), 3);
        assert_eq!(tree.len(), 2);
        let (i, _) = tree.nearest(&[4.0, 5.0, 6.1]).unwrap();
        assert_eq!(i, 1);
    }

    #[test]
    fn knn_ties_resolve_to_smallest_indices() {
        // Duplicated points force exact distance ties, including across
        // splitting planes: the canonical result keeps the smallest
        // indices, whatever the tree shape.
        let mut pts = Vec::new();
        for _ in 0..8 {
            pts.extend_from_slice(&[1.0, 1.0]);
        }
        for _ in 0..8 {
            pts.extend_from_slice(&[2.0, 2.0]);
        }
        let t = KdTree::build(2, &pts);
        let got = t.knn(&[1.0, 1.0], 3);
        assert_eq!(
            got.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        // Query equidistant from both clusters: ties span the split.
        let mid = t.knn(&[1.5, 1.5], 10);
        let idx: Vec<usize> = mid.iter().map(|&(i, _)| i).collect();
        assert_eq!(idx, (0..10).collect::<Vec<_>>(), "canonical tie set");
    }

    #[test]
    fn knn_into_reuses_buffer() {
        let pts = grid_points(8);
        let t = KdTree::build(2, &pts);
        let mut buf = Vec::new();
        t.knn_into(&[2.7, 3.1], 7, &mut buf);
        assert_eq!(buf, t.knn(&[2.7, 3.1], 7));
        let cap = buf.capacity();
        for _ in 0..10 {
            t.knn_into(&[1.2, 5.9], 7, &mut buf);
        }
        assert_eq!(buf.capacity(), cap);
    }

    prop_compose! {
        fn arb_points(max_n: usize)(n in 1..max_n)(
            coords in proptest::collection::vec(-50.0..50.0f64, n * 2)
        ) -> Vec<f64> {
            coords
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn nearest_matches_brute(pts in arb_points(120), qx in -60.0..60.0f64, qy in -60.0..60.0f64) {
            let t = KdTree::build(2, &pts);
            let got = t.nearest(&[qx, qy]).unwrap();
            let want = brute::nearest(2, &pts, &[qx, qy]).unwrap();
            prop_assert!((got.1 - want.1).abs() < 1e-9);
        }

        #[test]
        fn knn_matches_brute(pts in arb_points(120), qx in -60.0..60.0f64, qy in -60.0..60.0f64, k in 1..20usize) {
            let t = KdTree::build(2, &pts);
            let got = t.knn(&[qx, qy], k);
            let want = brute::knn(2, &pts, &[qx, qy], k);
            prop_assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g.1 - w.1).abs() < 1e-9);
            }
        }

        #[test]
        fn count_matches_brute(pts in arb_points(120), qx in -60.0..60.0f64, qy in -60.0..60.0f64, r in 0.0..80.0f64) {
            let t = KdTree::build(2, &pts);
            prop_assert_eq!(
                t.count_within(&[qx, qy], r, true),
                brute::count_within_strict(2, &pts, &[qx, qy], r)
            );
            prop_assert_eq!(
                t.count_within(&[qx, qy], r, false),
                brute::count_within_inclusive(2, &pts, &[qx, qy], r)
            );
        }
    }
}
