//! Spatial indexing substrate.
//!
//! Three consumers in the workspace need neighbourhood queries:
//!
//! * the **simulator** sums forces over all particles within the cut-off
//!   radius `r_c` (paper Eq. 6) — served by [`CellGrid`], a uniform-grid
//!   neighbour list rebuilt per step in `O(n)`;
//! * the **ICP alignment** (paper §5.2) needs nearest neighbours between
//!   2-D point sets — served by [`KdTree`];
//! * the **KSG estimator** (paper Eq. 18–20) needs per-variable strict
//!   range counts and joint-space k-NN under a max-over-blocks metric —
//!   served by [`KdTree::count_within`] per block and, for the joint
//!   search, [`block_max::knn_block_max`] (pruned scan, high joint
//!   dimension) or [`block_max::knn_block_max_tree_into`] (iterative
//!   kd-tree descent, low joint dimension). [`KdTree::rebuild`] re-indexes
//!   in place so persistent engines never reallocate.
//!
//! [`brute`] holds the obviously-correct `O(n²)` references that the
//! property tests compare against and that small inputs fall back to.

pub mod block_max;
pub mod brute;
pub mod cellgrid;
pub mod kdtree;

pub use cellgrid::CellGrid;
pub use kdtree::KdTree;

/// Squared Euclidean distance between two equal-length coordinate slices.
#[inline]
pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_sq_basic() {
        assert_eq!(dist_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dist_sq(&[1.0], &[1.0]), 0.0);
    }
}
