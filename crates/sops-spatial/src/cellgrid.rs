//! Uniform-grid neighbour lists for the simulator.
//!
//! The particle simulator needs, at every step, all pairs within the
//! cut-off radius `r_c` (paper Eq. 6). A uniform grid with cell size `r_c`
//! turns that into an `O(n)` build plus an `O(n · density)` sweep over the
//! 3×3 cell neighbourhood — the standard "cell list" method from molecular
//! dynamics. For unbounded interactions (`r_c = ∞`, used by Figs. 9 and 10)
//! the caller falls back to the all-pairs loop.

use sops_math::Vec2;

/// A uniform grid over 2-D points supporting radius-bounded neighbour
/// iteration. Uses a CSR layout (offsets + packed indices) to avoid
/// per-cell allocations.
#[derive(Debug, Clone)]
pub struct CellGrid {
    cell: f64,
    origin: Vec2,
    nx: usize,
    ny: usize,
    /// CSR offsets: cell c holds indices `items[offsets[c]..offsets[c+1]]`.
    offsets: Vec<u32>,
    items: Vec<u32>,
    points: Vec<Vec2>,
}

impl CellGrid {
    /// Builds a grid with cells of size `cell_size` covering the bounding
    /// box of `points`.
    ///
    /// `cell_size` should be ≥ the query radius used later so that the 3×3
    /// neighbourhood sweep is exhaustive; [`CellGrid::for_neighbors`]
    /// asserts this in debug builds.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not finite and positive.
    pub fn build(points: &[Vec2], cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "CellGrid: cell size must be positive and finite"
        );
        if points.is_empty() {
            return CellGrid {
                cell: cell_size,
                origin: Vec2::ZERO,
                nx: 1,
                ny: 1,
                offsets: vec![0, 0],
                items: Vec::new(),
                points: Vec::new(),
            };
        }
        let mut lo = points[0];
        let mut hi = points[0];
        for &p in points {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        let nx = (((hi.x - lo.x) / cell_size).floor() as usize + 1).max(1);
        let ny = (((hi.y - lo.y) / cell_size).floor() as usize + 1).max(1);
        let ncells = nx * ny;

        // Counting sort into cells.
        let cell_of = |p: Vec2| -> usize {
            let cx = (((p.x - lo.x) / cell_size) as usize).min(nx - 1);
            let cy = (((p.y - lo.y) / cell_size) as usize).min(ny - 1);
            cy * nx + cx
        };
        let mut counts = vec![0u32; ncells + 1];
        for &p in points {
            counts[cell_of(p) + 1] += 1;
        }
        for c in 0..ncells {
            counts[c + 1] += counts[c];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut items = vec![0u32; points.len()];
        for (i, &p) in points.iter().enumerate() {
            let c = cell_of(p);
            items[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }

        CellGrid {
            cell: cell_size,
            origin: lo,
            nx,
            ny,
            offsets,
            items,
            points: points.to_vec(),
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Grid shape `(nx, ny)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    #[inline]
    fn cell_coords(&self, p: Vec2) -> (usize, usize) {
        let cx = (((p.x - self.origin.x) / self.cell) as usize).min(self.nx - 1);
        let cy = (((p.y - self.origin.y) / self.cell) as usize).min(self.ny - 1);
        (cx, cy)
    }

    /// Calls `f(j, dist_sq)` for every indexed point `j ≠ exclude` within
    /// `radius` (inclusive) of `query`.
    ///
    /// `exclude` is typically the queried particle's own index; pass
    /// `usize::MAX` to exclude nothing.
    pub fn for_neighbors(
        &self,
        query: Vec2,
        radius: f64,
        exclude: usize,
        mut f: impl FnMut(usize, f64),
    ) {
        debug_assert!(
            radius <= self.cell * (1.0 + 1e-12),
            "CellGrid: query radius {radius} exceeds cell size {}",
            self.cell
        );
        if self.is_empty() {
            return;
        }
        let r2 = radius * radius;
        let (cx, cy) = self.cell_coords(query);
        let x0 = cx.saturating_sub(1);
        let x1 = (cx + 1).min(self.nx - 1);
        let y0 = cy.saturating_sub(1);
        let y1 = (cy + 1).min(self.ny - 1);
        for gy in y0..=y1 {
            for gx in x0..=x1 {
                let c = gy * self.nx + gx;
                let lo = self.offsets[c] as usize;
                let hi = self.offsets[c + 1] as usize;
                for &j in &self.items[lo..hi] {
                    let j = j as usize;
                    if j == exclude {
                        continue;
                    }
                    let d2 = self.points[j].dist_sq(query);
                    if d2 <= r2 {
                        f(j, d2);
                    }
                }
            }
        }
    }

    /// Collects all unordered pairs `(i, j)`, `i < j`, within `radius`
    /// (inclusive), in lexicographic order.
    ///
    /// Convenience wrapper for tests and diagnostics; the simulator's hot
    /// loop uses [`CellGrid::for_neighbors`] per particle instead to
    /// accumulate asymmetric per-type forces directly.
    pub fn pairs_within(&self, radius: f64) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..self.len() {
            self.for_neighbors(self.points[i], radius, i, |j, _| {
                if i < j {
                    out.push((i, j));
                }
            });
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use proptest::prelude::*;

    fn to_flat(points: &[Vec2]) -> Vec<f64> {
        points.iter().flat_map(|p| [p.x, p.y]).collect()
    }

    #[test]
    fn empty_grid() {
        let g = CellGrid::build(&[], 1.0);
        assert!(g.is_empty());
        let mut called = false;
        g.for_neighbors(Vec2::ZERO, 1.0, usize::MAX, |_, _| called = true);
        assert!(!called);
        assert!(g.pairs_within(1.0).is_empty());
    }

    #[test]
    fn single_cell_all_points() {
        let pts = vec![
            Vec2::new(0.1, 0.1),
            Vec2::new(0.2, 0.2),
            Vec2::new(0.3, 0.3),
        ];
        let g = CellGrid::build(&pts, 10.0);
        assert_eq!(g.shape(), (1, 1));
        let mut found = Vec::new();
        g.for_neighbors(pts[0], 10.0, 0, |j, _| found.push(j));
        found.sort_unstable();
        assert_eq!(found, vec![1, 2]);
    }

    #[test]
    fn neighbor_search_respects_radius() {
        let pts = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(0.5, 0.0),
            Vec2::new(2.0, 0.0),
            Vec2::new(0.0, 0.9),
        ];
        let g = CellGrid::build(&pts, 1.0);
        let mut found = Vec::new();
        g.for_neighbors(pts[0], 1.0, 0, |j, d2| found.push((j, d2)));
        found.sort_by_key(|a| a.0);
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].0, 1);
        assert_eq!(found[1].0, 3);
    }

    #[test]
    fn pairs_match_brute_on_cluster() {
        let pts: Vec<Vec2> = (0..40)
            .map(|i| Vec2::new((i % 7) as f64 * 0.6, (i / 7) as f64 * 0.6))
            .collect();
        let g = CellGrid::build(&pts, 1.25);
        assert_eq!(
            g.pairs_within(1.25),
            brute::pairs_within(2, &to_flat(&pts), 1.25)
        );
    }

    #[test]
    fn exclusion_skips_self_not_duplicates() {
        // Two particles at the same location: the query for particle 0 must
        // still see particle 1.
        let pts = vec![Vec2::new(1.0, 1.0), Vec2::new(1.0, 1.0)];
        let g = CellGrid::build(&pts, 1.0);
        let mut found = Vec::new();
        g.for_neighbors(pts[0], 1.0, 0, |j, d2| found.push((j, d2)));
        assert_eq!(found, vec![(1, 0.0)]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn pairs_match_brute(
            coords in proptest::collection::vec((-20.0..20.0f64, -20.0..20.0f64), 1..80),
            radius in 0.1..5.0f64
        ) {
            let pts: Vec<Vec2> = coords.iter().map(|&(x, y)| Vec2::new(x, y)).collect();
            let g = CellGrid::build(&pts, radius);
            prop_assert_eq!(g.pairs_within(radius), brute::pairs_within(2, &to_flat(&pts), radius));
        }

        #[test]
        fn neighbors_match_brute_counts(
            coords in proptest::collection::vec((-10.0..10.0f64, -10.0..10.0f64), 1..60),
            radius in 0.1..3.0f64,
            qi in 0..60usize
        ) {
            let pts: Vec<Vec2> = coords.iter().map(|&(x, y)| Vec2::new(x, y)).collect();
            let qi = qi % pts.len();
            let g = CellGrid::build(&pts, radius);
            let mut count = 0;
            g.for_neighbors(pts[qi], radius, qi, |_, _| count += 1);
            // Brute count includes the query point itself (distance 0), so subtract 1.
            let brute_count = brute::count_within_inclusive(2, &to_flat(&pts), &[pts[qi].x, pts[qi].y], radius) - 1;
            prop_assert_eq!(count, brute_count);
        }
    }
}
