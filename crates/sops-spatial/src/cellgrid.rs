//! Uniform-grid neighbour lists for the simulator.
//!
//! The particle simulator needs, at every step, all pairs within the
//! cut-off radius `r_c` (paper Eq. 6). A uniform grid with cell size `r_c`
//! turns that into an `O(n)` build plus an `O(n · density)` sweep over the
//! 3×3 cell neighbourhood — the standard "cell list" method from molecular
//! dynamics. For unbounded interactions (`r_c = ∞`, used by Figs. 9 and 10)
//! the caller falls back to the all-pairs loop.

use sops_math::Vec2;

/// A uniform grid over 2-D points supporting radius-bounded neighbour
/// iteration. Uses a CSR layout (offsets + packed indices) to avoid
/// per-cell allocations.
///
/// The grid can be [rebuilt in place](CellGrid::rebuild) every simulation
/// substep: all internal buffers (offsets, the packed index list, the
/// point copy and the counting-sort cursor) are reused, so a warmed-up
/// grid performs zero heap allocations while the particle count and cell
/// occupancy stay within previously seen bounds.
#[derive(Debug, Clone)]
pub struct CellGrid {
    cell: f64,
    origin: Vec2,
    nx: usize,
    ny: usize,
    /// CSR offsets: cell c holds indices `items[offsets[c]..offsets[c+1]]`.
    offsets: Vec<u32>,
    items: Vec<u32>,
    points: Vec<Vec2>,
    /// Counting-sort cursor, kept around so `rebuild` allocates nothing.
    cursor: Vec<u32>,
}

impl CellGrid {
    /// Builds a grid with cells of size `cell_size` covering the bounding
    /// box of `points`.
    ///
    /// `cell_size` must be ≥ the query radius used later so that the 3×3
    /// neighbourhood sweep is exhaustive — strictly larger cells are
    /// first-class (queries with a radius *smaller* than the cell size
    /// stay exact, they just scan more candidates per cell);
    /// [`CellGrid::for_neighbors`] checks the invariant in debug builds.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not finite and positive.
    pub fn build(points: &[Vec2], cell_size: f64) -> Self {
        let mut grid = CellGrid {
            cell: cell_size,
            origin: Vec2::ZERO,
            nx: 1,
            ny: 1,
            offsets: Vec::new(),
            items: Vec::new(),
            points: Vec::new(),
            cursor: Vec::new(),
        };
        grid.rebuild(points, cell_size);
        grid
    }

    /// Re-indexes the grid over a new point set, reusing every internal
    /// buffer. Semantically identical to `*self = CellGrid::build(points,
    /// cell_size)` but allocation-free once the buffers have grown to the
    /// workload's steady-state size — this is the per-substep entry point
    /// of the simulator's force workspace.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not finite and positive.
    pub fn rebuild(&mut self, points: &[Vec2], cell_size: f64) {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "CellGrid: cell size must be positive and finite"
        );
        self.cell = cell_size;
        self.points.clear();
        self.points.extend_from_slice(points);
        if points.is_empty() {
            self.origin = Vec2::ZERO;
            self.nx = 1;
            self.ny = 1;
            self.offsets.clear();
            self.offsets.extend_from_slice(&[0, 0]);
            self.items.clear();
            return;
        }
        debug_assert!(points.len() <= u32::MAX as usize, "CellGrid: u32 indices");
        let mut lo = points[0];
        let mut hi = points[0];
        for &p in points {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        let nx = (((hi.x - lo.x) / cell_size).floor() as usize + 1).max(1);
        let ny = (((hi.y - lo.y) / cell_size).floor() as usize + 1).max(1);
        let ncells = nx * ny;
        self.origin = lo;
        self.nx = nx;
        self.ny = ny;

        // Counting sort into cells, entirely within reused buffers.
        let cell_of = |p: Vec2| -> usize {
            let cx = (((p.x - lo.x) / cell_size) as usize).min(nx - 1);
            let cy = (((p.y - lo.y) / cell_size) as usize).min(ny - 1);
            cy * nx + cx
        };
        self.offsets.clear();
        self.offsets.resize(ncells + 1, 0);
        for &p in points {
            self.offsets[cell_of(p) + 1] += 1;
        }
        for c in 0..ncells {
            self.offsets[c + 1] += self.offsets[c];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.offsets);
        self.items.clear();
        self.items.resize(points.len(), 0);
        for (i, &p) in points.iter().enumerate() {
            let c = cell_of(p);
            self.items[self.cursor[c] as usize] = i as u32;
            self.cursor[c] += 1;
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Grid shape `(nx, ny)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Number of grid cells `nx · ny`. Cell `c` sits at column `c % nx`,
    /// row `c / nx`.
    pub fn cells(&self) -> usize {
        self.nx * self.ny
    }

    /// The indexed point ids in cell order — the CSR payload. Cell `c`
    /// owns the slice `order()[a..b]` with `(a, b) = cell_bounds(c)`.
    ///
    /// This doubles as a cache-coherent iteration order: gathering
    /// positions as `order().map(|i| points[i])` yields a layout where
    /// each cell's points are contiguous, which is what the simulator's
    /// half-neighbourhood force sweep iterates over.
    pub fn order(&self) -> &[u32] {
        &self.items
    }

    /// Half-open range `(start, end)` into [`CellGrid::order`] for cell
    /// `c`.
    pub fn cell_bounds(&self, c: usize) -> (usize, usize) {
        (self.offsets[c] as usize, self.offsets[c + 1] as usize)
    }

    /// Capacities of every internal buffer, for allocation-stability
    /// assertions: a warmed-up grid rebuilt over a workload of bounded
    /// size must keep this signature constant.
    pub fn capacity_signature(&self) -> [usize; 4] {
        [
            self.offsets.capacity(),
            self.items.capacity(),
            self.points.capacity(),
            self.cursor.capacity(),
        ]
    }

    #[inline]
    fn cell_coords(&self, p: Vec2) -> (usize, usize) {
        let cx = (((p.x - self.origin.x) / self.cell) as usize).min(self.nx - 1);
        let cy = (((p.y - self.origin.y) / self.cell) as usize).min(self.ny - 1);
        (cx, cy)
    }

    /// Calls `f(j, dist_sq)` for every indexed point `j ≠ exclude` within
    /// `radius` (inclusive) of `query`.
    ///
    /// `exclude` is typically the queried particle's own index; pass
    /// `usize::MAX` to exclude nothing.
    ///
    /// Any `radius ≤ cell_size` is supported — the grid need not be built
    /// with a cell size exactly equal to the query radius. A cut-off
    /// *smaller* than the cell stays exact (the 3×3 sweep over-scans and
    /// the distance test filters); only `radius > cell_size` would make
    /// the sweep non-exhaustive, which the debug assertion rejects.
    pub fn for_neighbors(
        &self,
        query: Vec2,
        radius: f64,
        exclude: usize,
        mut f: impl FnMut(usize, f64),
    ) {
        debug_assert!(
            radius <= self.cell * (1.0 + 1e-12),
            "CellGrid: query radius {radius} exceeds cell size {} (the 3×3 \
             sweep would miss neighbours; rebuild with cell_size >= radius)",
            self.cell
        );
        if self.is_empty() {
            return;
        }
        let r2 = radius * radius;
        let (cx, cy) = self.cell_coords(query);
        let x0 = cx.saturating_sub(1);
        let x1 = (cx + 1).min(self.nx - 1);
        let y0 = cy.saturating_sub(1);
        let y1 = (cy + 1).min(self.ny - 1);
        for gy in y0..=y1 {
            for gx in x0..=x1 {
                let c = gy * self.nx + gx;
                let lo = self.offsets[c] as usize;
                let hi = self.offsets[c + 1] as usize;
                for &j in &self.items[lo..hi] {
                    let j = j as usize;
                    if j == exclude {
                        continue;
                    }
                    let d2 = self.points[j].dist_sq(query);
                    if d2 <= r2 {
                        f(j, d2);
                    }
                }
            }
        }
    }

    /// Collects all unordered pairs `(i, j)`, `i < j`, within `radius`
    /// (inclusive), in lexicographic order.
    ///
    /// Convenience wrapper for tests and diagnostics; the simulator's hot
    /// loop uses [`CellGrid::for_neighbors`] per particle instead to
    /// accumulate asymmetric per-type forces directly.
    pub fn pairs_within(&self, radius: f64) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..self.len() {
            self.for_neighbors(self.points[i], radius, i, |j, _| {
                if i < j {
                    out.push((i, j));
                }
            });
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use proptest::prelude::*;

    fn to_flat(points: &[Vec2]) -> Vec<f64> {
        points.iter().flat_map(|p| [p.x, p.y]).collect()
    }

    #[test]
    fn empty_grid() {
        let g = CellGrid::build(&[], 1.0);
        assert!(g.is_empty());
        let mut called = false;
        g.for_neighbors(Vec2::ZERO, 1.0, usize::MAX, |_, _| called = true);
        assert!(!called);
        assert!(g.pairs_within(1.0).is_empty());
    }

    #[test]
    fn single_cell_all_points() {
        let pts = vec![
            Vec2::new(0.1, 0.1),
            Vec2::new(0.2, 0.2),
            Vec2::new(0.3, 0.3),
        ];
        let g = CellGrid::build(&pts, 10.0);
        assert_eq!(g.shape(), (1, 1));
        let mut found = Vec::new();
        g.for_neighbors(pts[0], 10.0, 0, |j, _| found.push(j));
        found.sort_unstable();
        assert_eq!(found, vec![1, 2]);
    }

    #[test]
    fn neighbor_search_respects_radius() {
        let pts = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(0.5, 0.0),
            Vec2::new(2.0, 0.0),
            Vec2::new(0.0, 0.9),
        ];
        let g = CellGrid::build(&pts, 1.0);
        let mut found = Vec::new();
        g.for_neighbors(pts[0], 1.0, 0, |j, d2| found.push((j, d2)));
        found.sort_by_key(|a| a.0);
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].0, 1);
        assert_eq!(found[1].0, 3);
    }

    #[test]
    fn pairs_match_brute_on_cluster() {
        let pts: Vec<Vec2> = (0..40)
            .map(|i| Vec2::new((i % 7) as f64 * 0.6, (i / 7) as f64 * 0.6))
            .collect();
        let g = CellGrid::build(&pts, 1.25);
        assert_eq!(
            g.pairs_within(1.25),
            brute::pairs_within(2, &to_flat(&pts), 1.25)
        );
    }

    #[test]
    fn exclusion_skips_self_not_duplicates() {
        // Two particles at the same location: the query for particle 0 must
        // still see particle 1.
        let pts = vec![Vec2::new(1.0, 1.0), Vec2::new(1.0, 1.0)];
        let g = CellGrid::build(&pts, 1.0);
        let mut found = Vec::new();
        g.for_neighbors(pts[0], 1.0, 0, |j, d2| found.push((j, d2)));
        assert_eq!(found, vec![(1, 0.0)]);
    }

    #[test]
    fn query_radius_smaller_than_cell_is_exact() {
        // A grid built with cells much larger than the cut-off must answer
        // small-radius queries exactly (the sweep over-scans, the distance
        // test filters).
        let pts: Vec<Vec2> = (0..60)
            .map(|i| Vec2::new((i % 10) as f64 * 0.4, (i / 10) as f64 * 0.4))
            .collect();
        let g = CellGrid::build(&pts, 3.0);
        let radius = 0.45;
        assert_eq!(
            g.pairs_within(radius),
            brute::pairs_within(2, &to_flat(&pts), radius)
        );
    }

    #[test]
    fn rebuild_matches_fresh_build() {
        let mut g = CellGrid::build(&[Vec2::ZERO], 1.0);
        for seed in 0..4u64 {
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1000) as f64 / 50.0 - 10.0
            };
            let pts: Vec<Vec2> = (0..50 + seed as usize * 17)
                .map(|_| Vec2::new(next(), next()))
                .collect();
            let cell = 1.0 + seed as f64 * 0.7;
            g.rebuild(&pts, cell);
            let fresh = CellGrid::build(&pts, cell);
            assert_eq!(g.shape(), fresh.shape());
            assert_eq!(g.order(), fresh.order());
            assert_eq!(g.pairs_within(cell), fresh.pairs_within(cell));
        }
        // Shrinking back to the empty set must also work in place.
        g.rebuild(&[], 2.0);
        assert!(g.is_empty());
        assert!(g.pairs_within(2.0).is_empty());
    }

    #[test]
    fn rebuild_is_allocation_stable() {
        let pts: Vec<Vec2> = (0..120)
            .map(|i| Vec2::new((i % 12) as f64 * 0.9, (i / 12) as f64 * 0.9))
            .collect();
        let mut g = CellGrid::build(&pts, 1.5);
        let sig = g.capacity_signature();
        for _ in 0..50 {
            g.rebuild(&pts, 1.5);
            assert_eq!(g.capacity_signature(), sig, "rebuild must not allocate");
        }
    }

    #[test]
    fn cell_order_accessors_are_consistent() {
        let pts: Vec<Vec2> = (0..33)
            .map(|i| Vec2::new((i % 6) as f64, (i / 6) as f64))
            .collect();
        let g = CellGrid::build(&pts, 1.0);
        let mut seen = vec![false; pts.len()];
        let mut total = 0usize;
        for c in 0..g.cells() {
            let (a, b) = g.cell_bounds(c);
            assert!(a <= b && b <= g.len());
            for &i in &g.order()[a..b] {
                assert!(!seen[i as usize], "point {i} listed twice");
                seen[i as usize] = true;
                total += 1;
            }
        }
        assert_eq!(total, pts.len(), "every point appears in exactly one cell");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn pairs_with_radius_below_cell_match_brute(
            coords in proptest::collection::vec((-15.0..15.0f64, -15.0..15.0f64), 1..60),
            radius in 0.1..2.0f64,
            slack in 1.0..4.0f64
        ) {
            // Build with cell size >= radius (not exactly equal): queries
            // must stay exhaustive and exact.
            let pts: Vec<Vec2> = coords.iter().map(|&(x, y)| Vec2::new(x, y)).collect();
            let g = CellGrid::build(&pts, radius * slack);
            prop_assert_eq!(g.pairs_within(radius), brute::pairs_within(2, &to_flat(&pts), radius));
        }

        #[test]
        fn pairs_match_brute(
            coords in proptest::collection::vec((-20.0..20.0f64, -20.0..20.0f64), 1..80),
            radius in 0.1..5.0f64
        ) {
            let pts: Vec<Vec2> = coords.iter().map(|&(x, y)| Vec2::new(x, y)).collect();
            let g = CellGrid::build(&pts, radius);
            prop_assert_eq!(g.pairs_within(radius), brute::pairs_within(2, &to_flat(&pts), radius));
        }

        #[test]
        fn neighbors_match_brute_counts(
            coords in proptest::collection::vec((-10.0..10.0f64, -10.0..10.0f64), 1..60),
            radius in 0.1..3.0f64,
            qi in 0..60usize
        ) {
            let pts: Vec<Vec2> = coords.iter().map(|&(x, y)| Vec2::new(x, y)).collect();
            let qi = qi % pts.len();
            let g = CellGrid::build(&pts, radius);
            let mut count = 0;
            g.for_neighbors(pts[qi], radius, qi, |_, _| count += 1);
            // Brute count includes the query point itself (distance 0), so subtract 1.
            let brute_count = brute::count_within_inclusive(2, &to_flat(&pts), &[pts[qi].x, pts[qi].y], radius) - 1;
            prop_assert_eq!(count, brute_count);
        }
    }
}
