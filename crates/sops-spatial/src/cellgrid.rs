//! Uniform-grid neighbour lists for the simulator.
//!
//! The particle simulator needs, at every step, all pairs within the
//! cut-off radius `r_c` (paper Eq. 6). A uniform grid with cell size `r_c`
//! turns that into an `O(n)` build plus an `O(n · density)` sweep over the
//! 3×3 cell neighbourhood — the standard "cell list" method from molecular
//! dynamics. For unbounded interactions (`r_c = ∞`, used by Figs. 9 and 10)
//! the caller falls back to the all-pairs loop.

use sops_math::Vec2;

/// A uniform grid over 2-D points supporting radius-bounded neighbour
/// iteration. Uses a CSR layout (offsets + packed indices) to avoid
/// per-cell allocations.
///
/// The grid can be [rebuilt in place](CellGrid::rebuild) every simulation
/// substep: all internal buffers (offsets, the packed index list, the
/// point copy and the counting-sort cursor) are reused, so a warmed-up
/// grid performs zero heap allocations while the particle count and cell
/// occupancy stay within previously seen bounds.
#[derive(Debug, Clone)]
pub struct CellGrid {
    cell: f64,
    origin: Vec2,
    nx: usize,
    ny: usize,
    /// CSR offsets: cell c holds indices `items[offsets[c]..offsets[c+1]]`.
    offsets: Vec<u32>,
    items: Vec<u32>,
    points: Vec<Vec2>,
    /// Counting-sort cursor, kept around so `rebuild` allocates nothing.
    cursor: Vec<u32>,
    /// Per-point cell ids from the counting pass, reused by the scatter
    /// pass (the cell computation costs two f64 divisions per point).
    cellid: Vec<u32>,
}

impl CellGrid {
    /// Builds a grid with cells of size `cell_size` covering the bounding
    /// box of `points`.
    ///
    /// `cell_size` must be ≥ the query radius used later so that the 3×3
    /// neighbourhood sweep is exhaustive — strictly larger cells are
    /// first-class (queries with a radius *smaller* than the cell size
    /// stay exact, they just scan more candidates per cell);
    /// [`CellGrid::for_neighbors`] checks the invariant in debug builds.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not finite and positive.
    pub fn build(points: &[Vec2], cell_size: f64) -> Self {
        let mut grid = CellGrid {
            cell: cell_size,
            origin: Vec2::ZERO,
            nx: 1,
            ny: 1,
            offsets: Vec::new(),
            items: Vec::new(),
            points: Vec::new(),
            cursor: Vec::new(),
            cellid: Vec::new(),
        };
        grid.rebuild(points, cell_size);
        grid
    }

    /// Re-indexes the grid over a new point set, reusing every internal
    /// buffer. Semantically identical to `*self = CellGrid::build(points,
    /// cell_size)` but allocation-free once the buffers have grown to the
    /// workload's steady-state size — this is the per-substep entry point
    /// of the simulator's force workspace.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not finite and positive.
    pub fn rebuild(&mut self, points: &[Vec2], cell_size: f64) {
        let (mut xs, mut ys) = (Vec::new(), Vec::new());
        self.rebuild_impl::<false>(points, cell_size, &mut xs, &mut ys);
    }

    /// [`CellGrid::rebuild`] fused with [`CellGrid::gather_lanes`]: the
    /// counting-sort scatter pass writes the cell-ordered `xs`/`ys`
    /// coordinate lanes directly, so the simulator's per-substep rebuild
    /// needs one pass over the points instead of two (the separate gather
    /// re-reads every point through the `order()` indirection).
    ///
    /// Equivalent to `rebuild(points, cell_size)` followed by
    /// `gather_lanes(points, xs, ys)` — same grid, same lanes, bit for
    /// bit — and allocation-free once all buffers are warm.
    pub fn rebuild_lanes(
        &mut self,
        points: &[Vec2],
        cell_size: f64,
        xs: &mut Vec<f64>,
        ys: &mut Vec<f64>,
    ) {
        self.rebuild_impl::<true>(points, cell_size, xs, ys);
    }

    fn rebuild_impl<const GATHER: bool>(
        &mut self,
        points: &[Vec2],
        cell_size: f64,
        xs: &mut Vec<f64>,
        ys: &mut Vec<f64>,
    ) {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "CellGrid: cell size must be positive and finite"
        );
        self.cell = cell_size;
        self.points.clear();
        self.points.extend_from_slice(points);
        if GATHER {
            // The scatter pass overwrites every slot, so warm rebuilds
            // only need the length fixed, not a zero fill.
            if xs.len() != points.len() {
                xs.clear();
                xs.resize(points.len(), 0.0);
            }
            if ys.len() != points.len() {
                ys.clear();
                ys.resize(points.len(), 0.0);
            }
        }
        if points.is_empty() {
            self.origin = Vec2::ZERO;
            self.nx = 1;
            self.ny = 1;
            self.offsets.clear();
            self.offsets.extend_from_slice(&[0, 0]);
            self.items.clear();
            return;
        }
        debug_assert!(points.len() <= u32::MAX as usize, "CellGrid: u32 indices");
        #[cfg(target_arch = "x86_64")]
        let has_wide = x86::wide_available();
        #[cfg(not(target_arch = "x86_64"))]
        let has_wide = false;
        let (lo, hi) = if has_wide {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `has_wide` certifies the target features; the empty
            // case returned above.
            unsafe {
                x86::bbox(points)
            }
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!()
        } else {
            let mut lo = points[0];
            let mut hi = points[0];
            for &p in points {
                lo = lo.min(p);
                hi = hi.max(p);
            }
            (lo, hi)
        };
        let nx = (((hi.x - lo.x) / cell_size).floor() as usize + 1).max(1);
        let ny = (((hi.y - lo.y) / cell_size).floor() as usize + 1).max(1);
        let ncells = nx * ny;
        self.origin = lo;
        self.nx = nx;
        self.ny = ny;

        // Counting sort into cells, entirely within reused buffers. The
        // cell id needs two f64 divisions per point, so it is computed
        // once and cached for the scatter pass.
        // u32 cell coordinates: `f64 as u32` saturates exactly like the
        // `as usize` + `.min()` pair for the in-range values the bounding
        // box guarantees, and the narrower cast is the one SSE2/AVX can
        // vectorize (`cvttpd2dq`). Cell counts are u32-bounded already
        // (`items`/`offsets` are u32).
        let (nxm1, nym1) = ((nx - 1) as u32, (ny - 1) as u32);
        let cell_of = |p: Vec2| -> u32 {
            let cx = (((p.x - lo.x) / cell_size) as u32).min(nxm1);
            let cy = (((p.y - lo.y) / cell_size) as u32).min(nym1);
            cy * nx as u32 + cx
        };
        self.offsets.clear();
        self.offsets.resize(ncells + 1, 0);
        // The cell-id pass is kept free of the histogram's random-access
        // increments so the divisions and float→int casts can vectorize;
        // the counting pass then runs over the cached ids.
        self.cellid.clear();
        self.cellid.resize(points.len(), 0);
        let wide = has_wide && nx <= i32::MAX as usize && ny <= i32::MAX as usize;
        #[cfg(target_arch = "x86_64")]
        if wide {
            // SAFETY: `wide` certifies the target features and the
            // `i32::MAX` grid bounds; `cellid` was just sized to the
            // point count.
            unsafe {
                x86::cell_ids(
                    points,
                    lo,
                    cell_size,
                    nxm1,
                    nym1,
                    nx as u32,
                    &mut self.cellid,
                );
            }
        }
        if !wide {
            for (cid, &p) in self.cellid.iter_mut().zip(points) {
                *cid = cell_of(p);
            }
        }
        for &c in &self.cellid {
            self.offsets[c as usize + 1] += 1;
        }
        for c in 0..ncells {
            self.offsets[c + 1] += self.offsets[c];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.offsets);
        self.items.clear();
        self.items.resize(points.len(), 0);
        for (i, &c) in self.cellid.iter().enumerate() {
            let c = c as usize;
            let dst = self.cursor[c] as usize;
            self.items[dst] = i as u32;
            if GATHER {
                let p = points[i];
                xs[dst] = p.x;
                ys[dst] = p.y;
            }
            self.cursor[c] += 1;
        }
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if no points are indexed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Grid shape `(nx, ny)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Number of grid cells `nx · ny`. Cell `c` sits at column `c % nx`,
    /// row `c / nx`.
    #[inline]
    pub fn cells(&self) -> usize {
        self.nx * self.ny
    }

    /// The indexed point ids in cell order — the CSR payload. Cell `c`
    /// owns the slice `order()[a..b]` with `(a, b) = cell_bounds(c)`.
    ///
    /// This doubles as a cache-coherent iteration order: gathering
    /// positions as `order().map(|i| points[i])` yields a layout where
    /// each cell's points are contiguous, which is what the simulator's
    /// half-neighbourhood force sweep iterates over.
    #[inline]
    pub fn order(&self) -> &[u32] {
        &self.items
    }

    /// Half-open range `(start, end)` into [`CellGrid::order`] for cell
    /// `c`.
    #[inline]
    pub fn cell_bounds(&self, c: usize) -> (usize, usize) {
        (self.offsets[c] as usize, self.offsets[c + 1] as usize)
    }

    /// Gathers `points` into cell order as SoA coordinate lanes:
    /// `xs[k] = points[order()[k]].x` (and likewise `ys`), with both
    /// outputs cleared first.
    ///
    /// This is the layout contract of the simulator's chunked force
    /// kernel: each cell's coordinates land contiguous in `xs`/`ys`, so a
    /// cell-pair segment is two slice windows the autovectorizer can
    /// stream over. `points` must be the slice the grid was last
    /// [rebuilt](CellGrid::rebuild) over (same length and order);
    /// callers keeping auxiliary per-point lanes (types, charges) must
    /// gather them through [`CellGrid::order`] with the same indexing so
    /// every lane stays aligned with `xs`/`ys`.
    pub fn gather_lanes(&self, points: &[Vec2], xs: &mut Vec<f64>, ys: &mut Vec<f64>) {
        assert_eq!(
            points.len(),
            self.items.len(),
            "CellGrid::gather_lanes: point count must match the indexed set"
        );
        xs.clear();
        ys.clear();
        xs.reserve(points.len());
        ys.reserve(points.len());
        for &i in &self.items {
            let p = points[i as usize];
            xs.push(p.x);
            ys.push(p.y);
        }
    }

    /// Capacities of every internal buffer, for allocation-stability
    /// assertions: a warmed-up grid rebuilt over a workload of bounded
    /// size must keep this signature constant.
    pub fn capacity_signature(&self) -> [usize; 5] {
        [
            self.offsets.capacity(),
            self.items.capacity(),
            self.points.capacity(),
            self.cursor.capacity(),
            self.cellid.capacity(),
        ]
    }

    #[inline]
    fn cell_coords(&self, p: Vec2) -> (usize, usize) {
        let cx = (((p.x - self.origin.x) / self.cell) as usize).min(self.nx - 1);
        let cy = (((p.y - self.origin.y) / self.cell) as usize).min(self.ny - 1);
        (cx, cy)
    }

    /// Calls `f(j, dist_sq)` for every indexed point `j ≠ exclude` within
    /// `radius` (inclusive) of `query`.
    ///
    /// `exclude` is typically the queried particle's own index; pass
    /// `usize::MAX` to exclude nothing.
    ///
    /// Any `radius ≤ cell_size` is supported — the grid need not be built
    /// with a cell size exactly equal to the query radius. A cut-off
    /// *smaller* than the cell stays exact (the 3×3 sweep over-scans and
    /// the distance test filters); only `radius > cell_size` would make
    /// the sweep non-exhaustive, which the debug assertion rejects.
    pub fn for_neighbors(
        &self,
        query: Vec2,
        radius: f64,
        exclude: usize,
        mut f: impl FnMut(usize, f64),
    ) {
        debug_assert!(
            radius <= self.cell * (1.0 + 1e-12),
            "CellGrid: query radius {radius} exceeds cell size {} (the 3×3 \
             sweep would miss neighbours; rebuild with cell_size >= radius)",
            self.cell
        );
        if self.is_empty() {
            return;
        }
        let r2 = radius * radius;
        let (cx, cy) = self.cell_coords(query);
        let x0 = cx.saturating_sub(1);
        let x1 = (cx + 1).min(self.nx - 1);
        let y0 = cy.saturating_sub(1);
        let y1 = (cy + 1).min(self.ny - 1);
        for gy in y0..=y1 {
            for gx in x0..=x1 {
                let c = gy * self.nx + gx;
                let lo = self.offsets[c] as usize;
                let hi = self.offsets[c + 1] as usize;
                for &j in &self.items[lo..hi] {
                    let j = j as usize;
                    if j == exclude {
                        continue;
                    }
                    let d2 = self.points[j].dist_sq(query);
                    if d2 <= r2 {
                        f(j, d2);
                    }
                }
            }
        }
    }

    /// Collects all unordered pairs `(i, j)`, `i < j`, within `radius`
    /// (inclusive), in lexicographic order.
    ///
    /// Convenience wrapper for tests and diagnostics; the simulator's hot
    /// loop uses [`CellGrid::for_neighbors`] per particle instead to
    /// accumulate asymmetric per-type forces directly.
    pub fn pairs_within(&self, radius: f64) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..self.len() {
            self.for_neighbors(self.points[i], radius, i, |j, _| {
                if i < j {
                    out.push((i, j));
                }
            });
        }
        out.sort_unstable();
        out
    }
}

/// Runtime-detected AVX-512 version of the cell-index pass — the only
/// long contiguous stream in the rebuild (two `f64` divisions per point
/// dominate it; `vdivpd` retires eight per instruction and IEEE division
/// is exact, so the vector form is bit-identical to the scalar one).
#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::*;
    use sops_math::Vec2;

    /// One cached CPUID check for the wide cell-index pass.
    #[inline]
    pub fn wide_available() -> bool {
        std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512vl")
    }

    /// Bounding box over the interleaved point stream, four points per
    /// `vminpd`/`vmaxpd` pair. For finite coordinates this equals the
    /// scalar `Vec2::min`/`max` fold exactly (min/max are exact and
    /// order-independent); on ties between `−0.0` and `+0.0` either sign
    /// may win, which cannot change any cell assignment (`x − ±0.0`
    /// differs only for `x = ±0.0`, where the quotient truncates to cell
    /// 0 either way).
    ///
    /// # Safety
    ///
    /// Caller must have verified [`wide_available`]; `points` non-empty.
    #[target_feature(enable = "avx512f,avx512vl")]
    pub unsafe fn bbox(points: &[Vec2]) -> (Vec2, Vec2) {
        let n = points.len();
        debug_assert!(n > 0);
        let base = points.as_ptr() as *const f64;
        let first = _mm512_castpd128_pd512(_mm_loadu_pd(base));
        // Broadcast the first point to every 128-bit lane: the
        // accumulators stay in interleaved `x y x y …` shape.
        let seed = _mm512_shuffle_f64x2::<0>(first, first);
        let mut lov = seed;
        let mut hiv = seed;
        let mut i = 0usize;
        while i + 4 <= n {
            let v = _mm512_loadu_pd(base.add(2 * i));
            lov = _mm512_min_pd(lov, v);
            hiv = _mm512_max_pd(hiv, v);
            i += 4;
        }
        let lo256 = _mm256_min_pd(
            _mm512_castpd512_pd256(lov),
            _mm512_extractf64x4_pd::<1>(lov),
        );
        let hi256 = _mm256_max_pd(
            _mm512_castpd512_pd256(hiv),
            _mm512_extractf64x4_pd::<1>(hiv),
        );
        let lo128 = _mm_min_pd(
            _mm256_castpd256_pd128(lo256),
            _mm256_extractf128_pd::<1>(lo256),
        );
        let hi128 = _mm_max_pd(
            _mm256_castpd256_pd128(hi256),
            _mm256_extractf128_pd::<1>(hi256),
        );
        let mut lob = [0.0f64; 2];
        let mut hib = [0.0f64; 2];
        _mm_storeu_pd(lob.as_mut_ptr(), lo128);
        _mm_storeu_pd(hib.as_mut_ptr(), hi128);
        let mut lo = Vec2::new(lob[0], lob[1]);
        let mut hi = Vec2::new(hib[0], hib[1]);
        for j in i..n {
            let p = *points.get_unchecked(j);
            lo = lo.min(p);
            hi = hi.max(p);
        }
        (lo, hi)
    }

    /// `out[i] = cell_of(points[i])` for the grid parameters given —
    /// exactly the portable expression
    /// `(((p.x − lo.x)/cell) as u32).min(nxm1)` (and likewise `y`),
    /// eight points per iteration.
    ///
    /// Equivalence holds for *every* input, not just well-behaved ones:
    /// a negative or NaN quotient converts to 0 (the `≥ 0` ordered mask
    /// zeroes the lane, matching the scalar saturating cast), and any
    /// quotient ≥ 2³¹ — where `vcvttpd2dq` yields `0x8000_0000` instead
    /// of the scalar cast's exact truncation — still clamps to the same
    /// `nxm1`/`nym1` because the caller guarantees `nx, ny ≤ i32::MAX`,
    /// making both values larger than the clamp.
    ///
    /// # Safety
    ///
    /// Caller must have verified [`wide_available`] and `nx ≤ i32::MAX`,
    /// `ny ≤ i32::MAX`; `out.len() == points.len()`.
    #[target_feature(enable = "avx512f,avx512vl")]
    pub unsafe fn cell_ids(
        points: &[Vec2],
        lo: Vec2,
        cell_size: f64,
        nxm1: u32,
        nym1: u32,
        nx: u32,
        out: &mut [u32],
    ) {
        debug_assert_eq!(points.len(), out.len());
        let n = points.len();
        // `Vec2` is `repr(C)`, so the point slice is an interleaved
        // `x y x y …` f64 stream.
        let base = points.as_ptr() as *const f64;
        let xsel = _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14);
        let ysel = _mm512_setr_epi64(1, 3, 5, 7, 9, 11, 13, 15);
        let lox = _mm512_set1_pd(lo.x);
        let loy = _mm512_set1_pd(lo.y);
        let cs = _mm512_set1_pd(cell_size);
        let zero = _mm512_setzero_pd();
        let nxv = _mm256_set1_epi32(nxm1 as i32);
        let nyv = _mm256_set1_epi32(nym1 as i32);
        let nxw = _mm256_set1_epi32(nx as i32);
        let mut i = 0usize;
        while i + 8 <= n {
            let a = _mm512_loadu_pd(base.add(2 * i));
            let b = _mm512_loadu_pd(base.add(2 * i + 8));
            let xv = _mm512_permutex2var_pd(a, xsel, b);
            let yv = _mm512_permutex2var_pd(a, ysel, b);
            let qx = _mm512_div_pd(_mm512_sub_pd(xv, lox), cs);
            let qy = _mm512_div_pd(_mm512_sub_pd(yv, loy), cs);
            let mx = _mm512_cmp_pd_mask::<_CMP_GE_OQ>(qx, zero);
            let my = _mm512_cmp_pd_mask::<_CMP_GE_OQ>(qy, zero);
            let cx = _mm256_maskz_mov_epi32(mx, _mm512_cvttpd_epi32(qx));
            let cy = _mm256_maskz_mov_epi32(my, _mm512_cvttpd_epi32(qy));
            let cx = _mm256_min_epu32(cx, nxv);
            let cy = _mm256_min_epu32(cy, nyv);
            let cell = _mm256_add_epi32(_mm256_mullo_epi32(cy, nxw), cx);
            _mm256_storeu_si256(out.as_mut_ptr().add(i).cast(), cell);
            i += 8;
        }
        for j in i..n {
            let p = *points.get_unchecked(j);
            let cx = (((p.x - lo.x) / cell_size) as u32).min(nxm1);
            let cy = (((p.y - lo.y) / cell_size) as u32).min(nym1);
            *out.get_unchecked_mut(j) = cy * nx + cx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use proptest::prelude::*;

    fn to_flat(points: &[Vec2]) -> Vec<f64> {
        points.iter().flat_map(|p| [p.x, p.y]).collect()
    }

    #[test]
    fn empty_grid() {
        let g = CellGrid::build(&[], 1.0);
        assert!(g.is_empty());
        let mut called = false;
        g.for_neighbors(Vec2::ZERO, 1.0, usize::MAX, |_, _| called = true);
        assert!(!called);
        assert!(g.pairs_within(1.0).is_empty());
    }

    #[test]
    fn single_cell_all_points() {
        let pts = vec![
            Vec2::new(0.1, 0.1),
            Vec2::new(0.2, 0.2),
            Vec2::new(0.3, 0.3),
        ];
        let g = CellGrid::build(&pts, 10.0);
        assert_eq!(g.shape(), (1, 1));
        let mut found = Vec::new();
        g.for_neighbors(pts[0], 10.0, 0, |j, _| found.push(j));
        found.sort_unstable();
        assert_eq!(found, vec![1, 2]);
    }

    #[test]
    fn neighbor_search_respects_radius() {
        let pts = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(0.5, 0.0),
            Vec2::new(2.0, 0.0),
            Vec2::new(0.0, 0.9),
        ];
        let g = CellGrid::build(&pts, 1.0);
        let mut found = Vec::new();
        g.for_neighbors(pts[0], 1.0, 0, |j, d2| found.push((j, d2)));
        found.sort_by_key(|a| a.0);
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].0, 1);
        assert_eq!(found[1].0, 3);
    }

    #[test]
    fn pairs_match_brute_on_cluster() {
        let pts: Vec<Vec2> = (0..40)
            .map(|i| Vec2::new((i % 7) as f64 * 0.6, (i / 7) as f64 * 0.6))
            .collect();
        let g = CellGrid::build(&pts, 1.25);
        assert_eq!(
            g.pairs_within(1.25),
            brute::pairs_within(2, &to_flat(&pts), 1.25)
        );
    }

    #[test]
    fn exclusion_skips_self_not_duplicates() {
        // Two particles at the same location: the query for particle 0 must
        // still see particle 1.
        let pts = vec![Vec2::new(1.0, 1.0), Vec2::new(1.0, 1.0)];
        let g = CellGrid::build(&pts, 1.0);
        let mut found = Vec::new();
        g.for_neighbors(pts[0], 1.0, 0, |j, d2| found.push((j, d2)));
        assert_eq!(found, vec![(1, 0.0)]);
    }

    #[test]
    fn query_radius_smaller_than_cell_is_exact() {
        // A grid built with cells much larger than the cut-off must answer
        // small-radius queries exactly (the sweep over-scans, the distance
        // test filters).
        let pts: Vec<Vec2> = (0..60)
            .map(|i| Vec2::new((i % 10) as f64 * 0.4, (i / 10) as f64 * 0.4))
            .collect();
        let g = CellGrid::build(&pts, 3.0);
        let radius = 0.45;
        assert_eq!(
            g.pairs_within(radius),
            brute::pairs_within(2, &to_flat(&pts), radius)
        );
    }

    #[test]
    fn rebuild_matches_fresh_build() {
        let mut g = CellGrid::build(&[Vec2::ZERO], 1.0);
        for seed in 0..4u64 {
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1000) as f64 / 50.0 - 10.0
            };
            let pts: Vec<Vec2> = (0..50 + seed as usize * 17)
                .map(|_| Vec2::new(next(), next()))
                .collect();
            let cell = 1.0 + seed as f64 * 0.7;
            g.rebuild(&pts, cell);
            let fresh = CellGrid::build(&pts, cell);
            assert_eq!(g.shape(), fresh.shape());
            assert_eq!(g.order(), fresh.order());
            assert_eq!(g.pairs_within(cell), fresh.pairs_within(cell));
        }
        // Shrinking back to the empty set must also work in place.
        g.rebuild(&[], 2.0);
        assert!(g.is_empty());
        assert!(g.pairs_within(2.0).is_empty());
    }

    #[test]
    fn rebuild_is_allocation_stable() {
        let pts: Vec<Vec2> = (0..120)
            .map(|i| Vec2::new((i % 12) as f64 * 0.9, (i / 12) as f64 * 0.9))
            .collect();
        let mut g = CellGrid::build(&pts, 1.5);
        let sig = g.capacity_signature();
        for _ in 0..50 {
            g.rebuild(&pts, 1.5);
            assert_eq!(g.capacity_signature(), sig, "rebuild must not allocate");
        }
    }

    #[test]
    fn rebuild_lanes_matches_rebuild_plus_gather() {
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 50.0 - 10.0
        };
        for n in [0usize, 1, 7, 120] {
            let pts: Vec<Vec2> = (0..n).map(|_| Vec2::new(next(), next())).collect();
            let mut fused = CellGrid::build(&[], 1.0);
            let (mut fx, mut fy) = (Vec::new(), Vec::new());
            fused.rebuild_lanes(&pts, 1.3, &mut fx, &mut fy);
            let mut two_pass = CellGrid::build(&[], 1.0);
            two_pass.rebuild(&pts, 1.3);
            let (mut gx, mut gy) = (Vec::new(), Vec::new());
            two_pass.gather_lanes(&pts, &mut gx, &mut gy);
            assert_eq!(fused.order(), two_pass.order());
            assert_eq!(fx, gx);
            assert_eq!(fy, gy);
        }
    }

    #[test]
    fn rebuild_lanes_is_allocation_stable() {
        let pts: Vec<Vec2> = (0..120)
            .map(|i| Vec2::new((i % 12) as f64 * 0.9, (i / 12) as f64 * 0.9))
            .collect();
        let mut g = CellGrid::build(&pts, 1.5);
        let (mut xs, mut ys) = (Vec::new(), Vec::new());
        g.rebuild_lanes(&pts, 1.5, &mut xs, &mut ys);
        let sig = g.capacity_signature();
        let lane_caps = (xs.capacity(), ys.capacity());
        for _ in 0..50 {
            g.rebuild_lanes(&pts, 1.5, &mut xs, &mut ys);
            assert_eq!(
                g.capacity_signature(),
                sig,
                "rebuild_lanes must not allocate"
            );
            assert_eq!((xs.capacity(), ys.capacity()), lane_caps);
        }
    }

    #[test]
    fn cell_order_accessors_are_consistent() {
        let pts: Vec<Vec2> = (0..33)
            .map(|i| Vec2::new((i % 6) as f64, (i / 6) as f64))
            .collect();
        let g = CellGrid::build(&pts, 1.0);
        let mut seen = vec![false; pts.len()];
        let mut total = 0usize;
        for c in 0..g.cells() {
            let (a, b) = g.cell_bounds(c);
            assert!(a <= b && b <= g.len());
            for &i in &g.order()[a..b] {
                assert!(!seen[i as usize], "point {i} listed twice");
                seen[i as usize] = true;
                total += 1;
            }
        }
        assert_eq!(total, pts.len(), "every point appears in exactly one cell");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn pairs_with_radius_below_cell_match_brute(
            coords in proptest::collection::vec((-15.0..15.0f64, -15.0..15.0f64), 1..60),
            radius in 0.1..2.0f64,
            slack in 1.0..4.0f64
        ) {
            // Build with cell size >= radius (not exactly equal): queries
            // must stay exhaustive and exact.
            let pts: Vec<Vec2> = coords.iter().map(|&(x, y)| Vec2::new(x, y)).collect();
            let g = CellGrid::build(&pts, radius * slack);
            prop_assert_eq!(g.pairs_within(radius), brute::pairs_within(2, &to_flat(&pts), radius));
        }

        #[test]
        fn pairs_match_brute(
            coords in proptest::collection::vec((-20.0..20.0f64, -20.0..20.0f64), 1..80),
            radius in 0.1..5.0f64
        ) {
            let pts: Vec<Vec2> = coords.iter().map(|&(x, y)| Vec2::new(x, y)).collect();
            let g = CellGrid::build(&pts, radius);
            prop_assert_eq!(g.pairs_within(radius), brute::pairs_within(2, &to_flat(&pts), radius));
        }

        #[test]
        fn neighbors_match_brute_counts(
            coords in proptest::collection::vec((-10.0..10.0f64, -10.0..10.0f64), 1..60),
            radius in 0.1..3.0f64,
            qi in 0..60usize
        ) {
            let pts: Vec<Vec2> = coords.iter().map(|&(x, y)| Vec2::new(x, y)).collect();
            let qi = qi % pts.len();
            let g = CellGrid::build(&pts, radius);
            let mut count = 0;
            g.for_neighbors(pts[qi], radius, qi, |_, _| count += 1);
            // Brute count includes the query point itself (distance 0), so subtract 1.
            let brute_count = brute::count_within_inclusive(2, &to_flat(&pts), &[pts[qi].x, pts[qi].y], radius) - 1;
            prop_assert_eq!(count, brute_count);
        }
    }
}
