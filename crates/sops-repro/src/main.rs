//! `repro` — regenerates every figure of Harder & Polani (2012).
//!
//! ```text
//! repro [--figure figN[,figM…]] [--fast] [--seed S] [--threads T] [--out DIR] [--list]
//! ```
//!
//! Without `--figure`, all figures run in order. `--fast` switches to the
//! reduced smoke-scale parameters (seconds instead of minutes). CSV
//! series land in `--out` (default `results/`).

use sops_core::{figures, RunOptions};
use std::process::ExitCode;
use std::time::Instant;

const ALL_FIGURES: [&str; 12] = [
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "fig12",
];

struct Args {
    figures: Vec<String>,
    opts: RunOptions,
    list: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: repro [--figure figN[,figM...]] [--fast] [--seed S] [--threads T] [--out DIR] [--list]\n\
         figures: {}",
        ALL_FIGURES.join(", ")
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut figures: Vec<String> = Vec::new();
    let mut opts = RunOptions {
        out_dir: Some(std::path::PathBuf::from("results")),
        ..RunOptions::default()
    };
    let mut list = false;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--figure" | "-f" => {
                i += 1;
                let value = argv.get(i).unwrap_or_else(|| usage());
                for name in value.split(',') {
                    let name = name.trim().to_lowercase();
                    if !ALL_FIGURES.contains(&name.as_str()) {
                        eprintln!("unknown figure: {name}");
                        usage();
                    }
                    figures.push(name);
                }
            }
            "--fast" => opts.fast = true,
            "--seed" => {
                i += 1;
                opts.seed = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--threads" => {
                i += 1;
                opts.threads = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                i += 1;
                opts.out_dir = Some(std::path::PathBuf::from(
                    argv.get(i).unwrap_or_else(|| usage()),
                ));
            }
            "--no-out" => opts.out_dir = None,
            "--list" => list = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
        i += 1;
    }
    if figures.is_empty() {
        figures = ALL_FIGURES.iter().map(|s| s.to_string()).collect();
    }
    Args {
        figures,
        opts,
        list,
    }
}

fn run_figure(name: &str, opts: &RunOptions) {
    match name {
        "fig1" => figures::fig1::run(opts).print(),
        "fig2" => figures::fig2::run(opts).print(),
        "fig3" => figures::fig3::run(opts).print(),
        "fig4" => figures::fig4::run(opts).print(),
        "fig5" => figures::fig5::run(opts).print(),
        "fig6" => figures::fig6::run(opts).print(),
        "fig7" => figures::fig7::run(opts).print(),
        "fig8" => figures::fig8::run(opts).print(),
        "fig9" => figures::fig9::run(opts).print(),
        "fig10" => figures::fig10::run(opts).print(),
        "fig11" => figures::fig11::run(opts).print(),
        "fig12" => figures::fig12::run(opts).print(),
        _ => unreachable!("validated in parse_args"),
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.list {
        for f in ALL_FIGURES {
            println!("{f}");
        }
        return ExitCode::SUCCESS;
    }
    println!(
        "sops repro — {} mode, seed {}, output {}",
        if args.opts.fast { "fast" } else { "full" },
        args.opts.seed,
        args.opts
            .out_dir
            .as_ref()
            .map(|d| d.display().to_string())
            .unwrap_or_else(|| "(none)".into())
    );
    let total = Instant::now();
    for name in &args.figures {
        println!("\n=== {name} ===");
        let t = Instant::now();
        run_figure(name, &args.opts);
        println!("  [{name} done in {:.1?}]", t.elapsed());
    }
    println!("\nall requested figures done in {:.1?}", total.elapsed());
    ExitCode::SUCCESS
}
