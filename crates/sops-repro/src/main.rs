//! `repro` — regenerates every figure of Harder & Polani (2012) and runs
//! scenario × measure sweeps.
//!
//! ```text
//! repro [--figure figN[,figM…]] [--fast] [--seed S] [--threads T] [--out DIR] [--list]
//! repro sweep [--scenario a[,b…]] [--measure ksg[,kde…]] [--seeds S1[,S2…]|A..B]
//!             [--fast] [--threads T] [--out DIR] [--no-out] [--list]
//!             [--save-baseline] [--check-baseline] [--baseline PATH]
//!             [--checkpoint DIR] [--resume] [--cache DIR]
//! ```
//!
//! Without `--figure`, all figures run in order. `--fast` switches to the
//! reduced smoke-scale parameters (seconds instead of minutes). CSV
//! series land in `--out` (default `results/`).
//!
//! The `sweep` subcommand drives the one-pass sweep engine over the
//! built-in scenario registry: each selected ensemble is simulated once
//! and every selected measure is evaluated on it in a single pass. It
//! prints the ΔI grid and writes `sweep.csv` / `sweep.json` to `--out`.
//! `--seeds` accepts comma lists and inclusive ranges (`1..8` ≡ `1..=8`
//! ≡ seeds 1–8). Multi-seed sweeps additionally print the seed-axis
//! summary grid (`mean ± CI`, significance vs `mixing_null`) and write
//! `sweep_summary.csv` / `sweep_summary.json`. `--save-baseline`
//! persists per-cell ΔI and per-group statistics to the baseline file
//! (default `BASELINE_sweep.json`); `--check-baseline` re-reads it and
//! exits non-zero if any ΔI moved outside the stored seed-axis
//! confidence interval — the CI regression gate.
//!
//! `--checkpoint DIR` saves `DIR/sweep_checkpoint.json` after every
//! completed ensemble (crash-safe: temp file + atomic rename). With
//! `--resume`, a checkpoint matching the plan fingerprint skips its
//! completed ensembles; a missing, corrupt or mismatched checkpoint is
//! reported on one line and the sweep recomputes from scratch. Resumed
//! sweeps are bit-identical to uninterrupted ones for any `--threads`.
//!
//! `--cache DIR` keeps a content-addressed store of completed cells
//! (`sops_core::cache`): each (scenario, measure, seed) cell is looked
//! up by its [`sops_core::checkpoint::cell_key`] before simulating and
//! reused on a hit, so repeated sweeps over overlapping grids only pay
//! for the cells they have never seen. Sweep outputs are bit-identical
//! with or without the cache; corrupt entries are evicted and
//! recomputed, never served.
//!
//! Exit codes:
//!
//! | code | meaning                                                    |
//! |------|------------------------------------------------------------|
//! | 0    | success                                                    |
//! | 1    | I/O or internal failure (write/read/checkpoint save)       |
//! | 2    | usage error, unknown name, or invalid plan                 |
//! | 3    | sweep completed but one or more cells were quarantined     |
//! | 4    | baseline check failed (takes precedence over 3)            |

use sops_core::report::{write_summary_csv, write_summary_json, write_sweep_csv, write_sweep_json};
use sops_core::scenario::{
    CellStatus, EnsembleStorage, ScenarioRegistry, ScenarioSpec, SweepPlan, SweepRunner,
};
use sops_core::{
    figures, CellCache, RunOptions, SweepBaseline, SweepCheckpoint, SweepError, SweepSummary,
};
use sops_info::MeasureConfig;
use std::process::ExitCode;
use std::time::Instant;

const ALL_FIGURES: [&str; 12] = [
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "fig12",
];

struct Args {
    figures: Vec<String>,
    opts: RunOptions,
    list: bool,
}

fn usage_text() -> String {
    format!(
        "usage: repro [--figure figN[,figM...]] [--fast] [--seed S] [--threads T] [--out DIR] [--list]\n\
         \x20      repro sweep [--scenario a[,b...]] [--measure m[,m2...]] [--seeds S1[,S2...]|A..B]\n\
         \x20                  [--fast] [--threads T] [--out DIR] [--no-out] [--list]\n\
         \x20                  [--save-baseline] [--check-baseline] [--baseline PATH]\n\
         \x20                  [--checkpoint DIR] [--resume] [--retained] [--cache DIR]\n\
         \x20      --seeds accepts inclusive ranges: 1..8 and 1..=8 both mean seeds 1-8\n\
         \x20      --checkpoint saves DIR/sweep_checkpoint.json after every ensemble;\n\
         \x20      --resume (requires --checkpoint) skips ensembles it already holds\n\
         \x20      --retained materializes full trajectories (default streams only\n\
         \x20      scheduled frames; results are bit-identical either way)\n\
         \x20      --measure NAME@EVERY subsamples every EVERY-th ensemble sample\n\
         \x20      before estimating (e.g. ksg@4; discrete has no strided form)\n\
         \x20      --cache DIR reuses content-addressed cell results across runs\n\
         \x20      (keyed by scenario physics x measure x seed; results are\n\
         \x20      bit-identical with or without the cache)\n\
         figures:  {}\n\
         measures: {}\n\
         exit codes: 0 ok, 1 i/o, 2 usage, 3 quarantined cells, 4 baseline check failed",
        ALL_FIGURES.join(", "),
        MeasureConfig::FAMILIES.join(", ")
    )
}

/// Usage error: print to stderr and exit 2 (`--help` prints the same
/// text to stdout and exits 0).
fn usage() -> ! {
    eprintln!("{}", usage_text());
    std::process::exit(2);
}

fn help() -> ! {
    println!("{}", usage_text());
    std::process::exit(0);
}

/// Exit code for a typed sweep failure: I/O problems are 1, everything
/// the caller can fix by changing the invocation or plan is 2.
fn error_exit_code(err: &SweepError) -> u8 {
    match err {
        SweepError::Io { .. } => 1,
        _ => 2,
    }
}

/// Final exit code of a sweep that ran to completion: baseline-gate
/// failures (4) outrank quarantined cells (3) outrank success (0).
fn sweep_exit_code(quarantined: bool, baseline_failed: bool) -> u8 {
    if baseline_failed {
        4
    } else if quarantined {
        3
    } else {
        0
    }
}

/// Measure selections delegate to the shared [`MeasureConfig::parse`]
/// so the CLI and `sops-serve` can never drift on the accepted names.
fn parse_measure(name: &str) -> Option<MeasureConfig> {
    MeasureConfig::parse(name)
}

fn parse_args() -> Args {
    let mut figures: Vec<String> = Vec::new();
    let mut opts = RunOptions {
        out_dir: Some(std::path::PathBuf::from("results")),
        ..RunOptions::default()
    };
    let mut list = false;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--figure" | "-f" => {
                i += 1;
                let value = argv.get(i).unwrap_or_else(|| usage());
                for name in value.split(',') {
                    let name = name.trim().to_lowercase();
                    if !ALL_FIGURES.contains(&name.as_str()) {
                        eprintln!("unknown figure: {name}");
                        usage();
                    }
                    figures.push(name);
                }
            }
            "--fast" => opts.fast = true,
            "--seed" => {
                i += 1;
                opts.seed = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--threads" => {
                i += 1;
                opts.threads = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                i += 1;
                opts.out_dir = Some(std::path::PathBuf::from(
                    argv.get(i).unwrap_or_else(|| usage()),
                ));
            }
            "--no-out" => opts.out_dir = None,
            "--list" => list = true,
            "--help" | "-h" => help(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
        i += 1;
    }
    if figures.is_empty() {
        figures = ALL_FIGURES.iter().map(|s| s.to_string()).collect();
    }
    Args {
        figures,
        opts,
        list,
    }
}

fn run_figure(name: &str, opts: &RunOptions) {
    match name {
        "fig1" => figures::fig1::run(opts).print(),
        "fig2" => figures::fig2::run(opts).print(),
        "fig3" => figures::fig3::run(opts).print(),
        "fig4" => figures::fig4::run(opts).print(),
        "fig5" => figures::fig5::run(opts).print(),
        "fig6" => figures::fig6::run(opts).print(),
        "fig7" => figures::fig7::run(opts).print(),
        "fig8" => figures::fig8::run(opts).print(),
        "fig9" => figures::fig9::run(opts).print(),
        "fig10" => figures::fig10::run(opts).print(),
        "fig11" => figures::fig11::run(opts).print(),
        "fig12" => figures::fig12::run(opts).print(),
        _ => unreachable!("validated in parse_args"),
    }
}

struct SweepArgs {
    scenarios: Vec<String>,
    measures: Vec<String>,
    seeds: Vec<u64>,
    fast: bool,
    threads: usize,
    out_dir: Option<std::path::PathBuf>,
    list: bool,
    save_baseline: bool,
    check_baseline: bool,
    baseline_path: std::path::PathBuf,
    checkpoint_dir: Option<std::path::PathBuf>,
    resume: bool,
    retained: bool,
    cache_dir: Option<std::path::PathBuf>,
}

/// One `--seeds` element: a plain seed (`7`) or an inclusive range
/// (`1..8` or `1..=8`, both meaning seeds 1, 2, …, 8).
fn parse_seed_spec(spec: &str, out: &mut Vec<u64>) -> Result<(), String> {
    let bad = || format!("bad seed spec '{spec}' (expected N, A..B or A..=B)");
    if let Some((lo, hi)) = spec.split_once("..") {
        let hi = hi.strip_prefix('=').unwrap_or(hi);
        let lo: u64 = lo.trim().parse().map_err(|_| bad())?;
        let hi: u64 = hi.trim().parse().map_err(|_| bad())?;
        if lo > hi {
            return Err(format!("empty seed range '{spec}' ({lo} > {hi})"));
        }
        out.extend(lo..=hi);
    } else {
        out.push(spec.trim().parse().map_err(|_| bad())?);
    }
    Ok(())
}

fn parse_sweep_args(argv: &[String]) -> SweepArgs {
    let mut args = SweepArgs {
        scenarios: Vec::new(),
        measures: Vec::new(),
        seeds: Vec::new(),
        fast: false,
        threads: 0,
        out_dir: Some(std::path::PathBuf::from("results")),
        list: false,
        save_baseline: false,
        check_baseline: false,
        baseline_path: std::path::PathBuf::from("BASELINE_sweep.json"),
        checkpoint_dir: None,
        resume: false,
        retained: false,
        cache_dir: None,
    };
    let csv = |value: &str| -> Vec<String> {
        value
            .split(',')
            .map(|s| s.trim().to_lowercase())
            .filter(|s| !s.is_empty())
            .collect()
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scenario" | "-s" => {
                i += 1;
                args.scenarios
                    .extend(csv(argv.get(i).unwrap_or_else(|| usage())));
            }
            "--measure" | "-m" => {
                i += 1;
                args.measures
                    .extend(csv(argv.get(i).unwrap_or_else(|| usage())));
            }
            "--seeds" => {
                i += 1;
                for s in csv(argv.get(i).unwrap_or_else(|| usage())) {
                    if let Err(e) = parse_seed_spec(&s, &mut args.seeds) {
                        eprintln!("{e}");
                        usage();
                    }
                }
            }
            "--fast" => args.fast = true,
            "--threads" => {
                i += 1;
                args.threads = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                i += 1;
                args.out_dir = Some(std::path::PathBuf::from(
                    argv.get(i).unwrap_or_else(|| usage()),
                ));
            }
            "--no-out" => args.out_dir = None,
            "--list" => args.list = true,
            "--save-baseline" => args.save_baseline = true,
            "--check-baseline" => args.check_baseline = true,
            "--baseline" => {
                i += 1;
                args.baseline_path =
                    std::path::PathBuf::from(argv.get(i).unwrap_or_else(|| usage()));
            }
            "--checkpoint" => {
                i += 1;
                args.checkpoint_dir = Some(std::path::PathBuf::from(
                    argv.get(i).unwrap_or_else(|| usage()),
                ));
            }
            "--resume" => args.resume = true,
            "--retained" => args.retained = true,
            "--cache" => {
                i += 1;
                args.cache_dir = Some(std::path::PathBuf::from(
                    argv.get(i).unwrap_or_else(|| usage()),
                ));
            }
            "--help" | "-h" => help(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
        i += 1;
    }
    if args.resume && args.checkpoint_dir.is_none() {
        eprintln!("--resume requires --checkpoint DIR");
        usage();
    }
    args
}

/// Smoke-scale transform for `sweep --fast`: enough samples that every
/// estimator stays defined (the Gaussian baseline needs more runs than
/// the joint dimension — 80 for the 40-particle scenarios), a horizon
/// short enough for seconds-scale runs.
fn fast_scenario(sc: ScenarioSpec) -> ScenarioSpec {
    let samples = sc.ensemble.samples.min(100);
    let t_max = sc.ensemble.t_max.min(40);
    sc.with_scale(samples, t_max)
}

fn run_sweep_cmd(argv: &[String]) -> ExitCode {
    let args = parse_sweep_args(argv);
    // Scenario names resolve against the full gallery (builtins plus the
    // large-scale tier); an argument-free sweep runs only the lab-sized
    // builtins, so nobody simulates 10⁵ particles by accident.
    let registry = ScenarioRegistry::gallery();
    let builtin = ScenarioRegistry::builtin();
    if args.list {
        for sc in registry.iter() {
            println!("{:<16} {}", sc.name, sc.description);
        }
        return ExitCode::SUCCESS;
    }
    let names: Vec<&str> = if args.scenarios.is_empty() {
        builtin.names()
    } else {
        args.scenarios.iter().map(|s| s.as_str()).collect()
    };
    let mut scenarios = match registry.select(&names) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    if args.fast {
        scenarios = scenarios.into_iter().map(fast_scenario).collect();
    }
    let measure_names: Vec<String> = if args.measures.is_empty() {
        MeasureConfig::FAMILIES
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        args.measures.clone()
    };
    let mut measures = Vec::with_capacity(measure_names.len());
    for name in &measure_names {
        match parse_measure(name) {
            Some(m) => measures.push(m),
            None => {
                eprintln!(
                    "unknown measure '{name}' (known: {})",
                    MeasureConfig::FAMILIES.join(", ")
                );
                return ExitCode::from(2);
            }
        }
    }
    let plan = SweepPlan {
        scenarios,
        measures,
        seeds: args.seeds,
        threads: args.threads,
        storage: if args.retained {
            EnsembleStorage::Retained
        } else {
            EnsembleStorage::default()
        },
    };
    println!(
        "sweep — {} scenario(s) × {} measure(s) × {} seed(s): {} cells over {} ensembles (each simulated once){}",
        plan.scenarios.len(),
        plan.measures.len(),
        plan.seeds.len().max(1),
        plan.cell_count(),
        plan.ensemble_count(),
        if args.fast { ", fast mode" } else { "" }
    );
    let cache = match &args.cache_dir {
        Some(dir) => match CellCache::open(dir) {
            Ok(c) => Some(c),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(error_exit_code(&e));
            }
        },
        None => None,
    };
    let t0 = Instant::now();
    let mut runner = SweepRunner::new();
    let run_result = match &args.checkpoint_dir {
        Some(dir) => {
            let path = dir.join("sweep_checkpoint.json");
            let checkpoint = if args.resume && path.exists() {
                match SweepCheckpoint::load(&path, &plan) {
                    Ok(c) => {
                        println!(
                            "resuming from {} ({} completed cell(s))",
                            path.display(),
                            c.cells().len()
                        );
                        Some(c)
                    }
                    Err(e) => {
                        eprintln!("ignoring checkpoint: {e}; recomputing from scratch");
                        None
                    }
                }
            } else {
                None
            };
            match checkpoint.map_or_else(|| SweepCheckpoint::new(&plan), Ok) {
                Ok(mut c) => match &cache {
                    Some(cc) => runner.run_with_checkpoint_and_cache(&plan, &mut c, &path, cc),
                    None => runner.run_with_checkpoint(&plan, &mut c, &path),
                },
                Err(e) => Err(e),
            }
        }
        None => match &cache {
            Some(cc) => runner.run_with_cache(&plan, cc),
            None => runner.run(&plan),
        },
    };
    let report = match run_result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(error_exit_code(&e));
        }
    };
    println!("\n{}", report.grid_table());
    if let Some(cc) = &cache {
        let s = cc.stats();
        println!(
            "cell cache {}: {} hit(s), {} miss(es), {} store(s), {} eviction(s)",
            cc.dir().display(),
            s.hits,
            s.misses,
            s.stores,
            s.evictions
        );
    }
    let failed = report.failed_cells();
    if !failed.is_empty() {
        eprintln!(
            "{} cell(s) quarantined (excluded from outputs):",
            failed.len()
        );
        for cell in &failed {
            if let CellStatus::Failed { reason } = &cell.status {
                eprintln!(
                    "  - {}/{}#{}: {reason}",
                    cell.scenario, cell.measure_label, cell.seed
                );
            }
        }
    }
    let summary = SweepSummary::from_report(&report);
    if plan.seeds.len() > 1 {
        println!("{}", summary.grid_table());
    }
    if let Some(dir) = &args.out_dir {
        let csv_path = dir.join("sweep.csv");
        let json_path = dir.join("sweep.json");
        let sum_csv = dir.join("sweep_summary.csv");
        let sum_json = dir.join("sweep_summary.json");
        if let Err(e) = write_sweep_csv(&csv_path, &report)
            .and_then(|()| write_sweep_json(&json_path, &report))
            .and_then(|()| write_summary_csv(&sum_csv, &summary))
            .and_then(|()| write_summary_json(&sum_json, &summary))
        {
            eprintln!("failed to write sweep outputs: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "wrote {}, {}, {} and {}",
            csv_path.display(),
            json_path.display(),
            sum_csv.display(),
            sum_json.display()
        );
    }
    if args.save_baseline {
        let baseline = SweepBaseline::from_sweep(&report, &summary);
        if let Err(e) = baseline.write(&args.baseline_path) {
            eprintln!("{e}");
            return ExitCode::from(error_exit_code(&e));
        }
        println!(
            "saved baseline ({} cells, {} groups) to {}",
            baseline.cells.len(),
            baseline.groups.len(),
            args.baseline_path.display()
        );
    }
    let mut baseline_failed = false;
    if args.check_baseline {
        let baseline = match SweepBaseline::read(&args.baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(error_exit_code(&e));
            }
        };
        let violations = baseline.check(&report, &summary);
        if violations.is_empty() {
            println!(
                "baseline check passed: every ΔI within the stored seed-axis CI ({})",
                args.baseline_path.display()
            );
        } else {
            eprintln!(
                "baseline check FAILED against {} ({} violation(s)):",
                args.baseline_path.display(),
                violations.len()
            );
            for v in &violations {
                eprintln!("  - {v}");
            }
            baseline_failed = true;
        }
    }
    println!("sweep done in {:.1?}", t0.elapsed());
    ExitCode::from(sweep_exit_code(!failed.is_empty(), baseline_failed))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(|s| s.as_str()) == Some("sweep") {
        return run_sweep_cmd(&argv[1..]);
    }
    let args = parse_args();
    if args.list {
        for f in ALL_FIGURES {
            println!("{f}");
        }
        return ExitCode::SUCCESS;
    }
    println!(
        "sops repro — {} mode, seed {}, output {}",
        if args.opts.fast { "fast" } else { "full" },
        args.opts.seed,
        args.opts
            .out_dir
            .as_ref()
            .map(|d| d.display().to_string())
            .unwrap_or_else(|| "(none)".into())
    );
    let total = Instant::now();
    for name in &args.figures {
        println!("\n=== {name} ===");
        let t = Instant::now();
        run_figure(name, &args.opts);
        println!("  [{name} done in {:.1?}]", t.elapsed());
    }
    println!("\nall requested figures done in {:.1?}", total.elapsed());
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_rank_baseline_over_quarantine() {
        assert_eq!(sweep_exit_code(false, false), 0);
        assert_eq!(sweep_exit_code(true, false), 3);
        assert_eq!(sweep_exit_code(false, true), 4);
        assert_eq!(sweep_exit_code(true, true), 4);
    }

    #[test]
    fn typed_errors_split_io_from_usage() {
        let io = SweepError::Io {
            path: "x.json".into(),
            op: "write",
            source: std::io::Error::other("disk full"),
        };
        assert_eq!(error_exit_code(&io), 1);
        let unknown = SweepError::UnknownScenario {
            name: "bogus".into(),
            known: vec!["cell_sorting".into()],
        };
        assert_eq!(error_exit_code(&unknown), 2);
        let invalid = SweepError::InvalidPlan("no measures".into());
        assert_eq!(error_exit_code(&invalid), 2);
    }

    #[test]
    fn measure_parser_accepts_strided_selections() {
        assert!(matches!(
            parse_measure("ksg@4"),
            Some(MeasureConfig::Strided {
                family: sops_info::StridedFamily::Ksg(_),
                every: 4,
            })
        ));
        assert!(matches!(
            parse_measure("gaussian@2"),
            Some(MeasureConfig::Strided {
                family: sops_info::StridedFamily::Gaussian,
                every: 2,
            })
        ));
        assert!(parse_measure("ksg@0").is_none(), "stride 0 is rejected");
        assert!(parse_measure("ksg@").is_none());
        assert!(parse_measure("discrete@2").is_none());
        assert!(parse_measure("bogus@3").is_none());
        assert!(matches!(parse_measure("ksg"), Some(MeasureConfig::Ksg(_))));
    }
}
