//! Contracts of the persistent shape-reduction scratch:
//!
//! * `icp_align_with`, `match_types_into` and `reduce_configurations_with`
//!   are bit-identical to their scratch-free shims for any worker count;
//! * a warmed-up `ReduceWorkspace` performs zero heap allocations across
//!   100 reduction calls (buffer-capacity stability, à la
//!   `crates/sops-info/tests/workspace_measure.rs`).

use sops_math::{SplitMix64, Vec2};
use sops_shape::ensemble::flatten_reduced;
use sops_shape::{
    icp_align, icp_align_with, match_types, match_types_into, reduce_configurations,
    reduce_configurations_with, IcpConfig, IcpScratch, MatchScratch, ReduceConfig, ReduceWorkspace,
    RigidTransform,
};

/// A deterministic ensemble slice: `samples` rigid+noisy copies of one
/// asymmetric multi-type shape.
fn slice(n: usize, samples: usize, seed: u64) -> (Vec<Vec<Vec2>>, Vec<u16>) {
    let mut rng = SplitMix64::new(seed);
    let base: Vec<Vec2> = (0..n)
        .map(|_| Vec2::new(rng.next_range(-4.0, 4.0), rng.next_range(-4.0, 4.0)))
        .collect();
    let types: Vec<u16> = (0..n).map(|i| (i % 3) as u16).collect();
    let slices = (0..samples)
        .map(|_| {
            let t = RigidTransform {
                rotation: rng.next_range(-3.0, 3.0),
                translation: Vec2::new(rng.next_range(-8.0, 8.0), rng.next_range(-8.0, 8.0)),
            };
            base.iter()
                .map(|&p| {
                    t.apply(p) + Vec2::new(rng.next_range(-0.05, 0.05), rng.next_range(-0.05, 0.05))
                })
                .collect()
        })
        .collect();
    (slices, types)
}

#[test]
fn icp_scratch_bit_identical_to_shim_across_reuse() {
    let mut scratch = IcpScratch::new();
    for seed in 0..5u64 {
        let (samples, types) = slice(12, 2, seed);
        let reference = &samples[0];
        let moving = &samples[1];
        let with = icp_align_with(
            &mut scratch,
            reference,
            moving,
            &types,
            &IcpConfig::default(),
        );
        let shim = icp_align(reference, moving, &types, &IcpConfig::default());
        assert_eq!(with.cost.to_bits(), shim.cost.to_bits(), "seed {seed}");
        assert_eq!(
            with.transform.rotation.to_bits(),
            shim.transform.rotation.to_bits()
        );
        assert_eq!(
            with.transform.translation.x.to_bits(),
            shim.transform.translation.x.to_bits()
        );
        assert_eq!(with.iterations, shim.iterations);
    }
}

#[test]
fn match_scratch_bit_identical_to_shim_across_reuse() {
    let mut scratch = MatchScratch::new();
    let mut perm = Vec::new();
    for (n, seed) in [(8usize, 1u64), (20, 2), (5, 3), (20, 4)] {
        let (samples, types) = slice(n, 2, seed);
        match_types_into(&mut scratch, &samples[0], &samples[1], &types, &mut perm);
        let shim = match_types(&samples[0], &samples[1], &types);
        assert_eq!(perm, shim, "n={n} seed={seed}");
    }
}

#[test]
fn reduce_with_workspace_bit_identical_for_any_worker_count() {
    let (samples, types) = slice(10, 12, 9);
    let views: Vec<&[Vec2]> = samples.iter().map(|s| s.as_slice()).collect();
    let shim = reduce_configurations(&views, &types, &ReduceConfig::default());
    for threads in [1usize, 4, 8] {
        let mut ws = ReduceWorkspace::new();
        let cfg = ReduceConfig {
            threads,
            ..ReduceConfig::default()
        };
        let got = reduce_configurations_with(&mut ws, &views, &types, &cfg);
        assert_eq!(got.configs, shim.configs, "threads={threads}");
        for (a, b) in got.icp_costs.iter().zip(&shim.icp_costs) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Flattened layout is what the estimators consume.
        assert_eq!(flatten_reduced(&got), flatten_reduced(&shim));
    }
}

#[test]
fn warmed_up_reduce_workspace_is_allocation_free_over_100_calls() {
    let mut ws = ReduceWorkspace::new();
    let cfg = ReduceConfig {
        threads: 1,
        ..ReduceConfig::default()
    };
    let (warm, types) = slice(9, 20, 77);
    let views: Vec<&[Vec2]> = warm.iter().map(|s| s.as_slice()).collect();
    for _ in 0..3 {
        reduce_configurations_with(&mut ws, &views, &types, &cfg);
    }
    let sig = ws.capacity_signature();
    for call in 0..100u64 {
        // Fresh data every call (capacities depend on shape, not values).
        let (samples, types) = slice(9, 20, 1000 + call);
        let views: Vec<&[Vec2]> = samples.iter().map(|s| s.as_slice()).collect();
        reduce_configurations_with(&mut ws, &views, &types, &cfg);
        assert_eq!(
            ws.capacity_signature(),
            sig,
            "reduce workspace allocated at call {call}"
        );
    }
}

#[test]
fn reduce_workspace_survives_shape_changes_between_calls() {
    let mut ws = ReduceWorkspace::new();
    for (round, (n, samples)) in [(6usize, 10usize), (15, 4), (3, 25), (15, 10)]
        .into_iter()
        .enumerate()
    {
        let (slices, types) = slice(n, samples, round as u64);
        let views: Vec<&[Vec2]> = slices.iter().map(|s| s.as_slice()).collect();
        let reused = reduce_configurations_with(&mut ws, &views, &types, &ReduceConfig::default());
        let fresh = reduce_configurations(&views, &types, &ReduceConfig::default());
        assert_eq!(reused.configs, fresh.configs, "round {round}");
    }
}
