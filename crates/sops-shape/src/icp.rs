//! Type-aware Iterative Closest Point alignment (paper §5.2).
//!
//! Aligns a *moving* configuration onto a *reference* configuration of the
//! same particle system by alternating nearest-neighbour correspondence
//! search with closed-form rigid fits. Correspondences are restricted to
//! particles of the same type — the paper achieved this by embedding the
//! type as a third coordinate scaled "a magnitude larger than the diameter
//! of the collective", which makes cross-type matches impossible; querying
//! a per-type kd-tree is the same thing without the embedding.
//!
//! ICP only converges to the nearest local optimum in rotation, so the
//! alignment is restarted from several initial rotation angles and the
//! lowest-cost result wins. The restart count is an ablation knob
//! (`icp_restarts` bench).

use crate::kabsch::{fit_rigid, RigidTransform};
use sops_math::Vec2;
use sops_spatial::KdTree;

/// ICP parameters.
#[derive(Debug, Clone, Copy)]
pub struct IcpConfig {
    /// Maximum correspondence/fit iterations per restart.
    pub max_iterations: usize,
    /// Stop when the mean squared correspondence cost improves by less
    /// than this relative amount between iterations.
    pub tolerance: f64,
    /// Number of evenly spaced initial rotation angles tried.
    pub restarts: usize,
}

impl Default for IcpConfig {
    fn default() -> Self {
        IcpConfig {
            max_iterations: 40,
            tolerance: 1e-9,
            restarts: 8,
        }
    }
}

/// Outcome of an alignment.
#[derive(Debug, Clone, Copy)]
pub struct IcpResult {
    /// Transform mapping the original moving configuration onto the
    /// reference.
    pub transform: RigidTransform,
    /// Final mean squared nearest-neighbour distance.
    pub cost: f64,
    /// Iterations used by the winning restart.
    pub iterations: usize,
}

/// Per-type view of a configuration: kd-trees over the reference points of
/// each type plus the type-local → global index maps. Rebuilt in place —
/// trees, coordinate gathers and index maps all keep their buffers.
#[derive(Debug, Clone, Default)]
struct TypedIndex {
    trees: Vec<KdTree>,
    globals: Vec<Vec<u32>>,
    coords: Vec<Vec<f64>>,
}

impl TypedIndex {
    fn rebuild(&mut self, points: &[Vec2], types: &[u16], type_count: usize) {
        while self.trees.len() < type_count {
            self.trees.push(KdTree::build(2, &[]));
            self.globals.push(Vec::new());
            self.coords.push(Vec::new());
        }
        for t in 0..type_count {
            self.coords[t].clear();
            self.globals[t].clear();
        }
        for (i, (&p, &t)) in points.iter().zip(types).enumerate() {
            self.coords[t as usize].extend_from_slice(&[p.x, p.y]);
            self.globals[t as usize].push(i as u32);
        }
        for t in 0..type_count {
            self.trees[t].rebuild(2, &self.coords[t]);
        }
    }

    /// Global index of the same-type nearest reference point.
    fn nearest(&self, p: Vec2, t: usize) -> usize {
        let (local, _) = self.trees[t]
            .nearest(&[p.x, p.y])
            .expect("TypedIndex: type has no reference points");
        self.globals[t][local] as usize
    }

    fn capacity_signature(&self, sig: &mut Vec<usize>) {
        sig.push(self.trees.len());
        for t in 0..self.trees.len() {
            sig.extend(self.trees[t].capacity_signature());
            sig.push(self.globals[t].capacity());
            sig.push(self.coords[t].capacity());
        }
    }
}

/// Reusable buffers for [`icp_align_with`]: the centred point sets, the
/// correspondence targets, and the per-type reference index (kd-trees
/// rebuilt in place). One alignment runs `restarts × iterations`
/// correspondence searches over the same index — and the reduction loop
/// runs one alignment per sample per evaluated time step, so the eval
/// workers hold this scratch in a [`crate::ensemble::ReduceWorkspace`].
#[derive(Debug, Clone, Default)]
pub struct IcpScratch {
    ref_c: Vec<Vec2>,
    mov_c: Vec<Vec2>,
    targets: Vec<Vec2>,
    index: TypedIndex,
}

impl IcpScratch {
    /// Empty scratch; buffers grow to the workload size on first use.
    pub fn new() -> Self {
        IcpScratch::default()
    }

    /// Capacities of the internal buffers (zero-allocation contract).
    pub fn capacity_signature(&self, sig: &mut Vec<usize>) {
        sig.push(self.ref_c.capacity());
        sig.push(self.mov_c.capacity());
        sig.push(self.targets.capacity());
        self.index.capacity_signature(sig);
    }
}

/// Aligns `moving` onto `reference`; `types[i]` is particle `i`'s type in
/// *both* configurations (they are states of the same system).
///
/// Convenience shim over [`icp_align_with`]; repeated callers (the
/// ensemble reduction) should hold an [`IcpScratch`].
///
/// # Panics
///
/// Panics if the slices differ in length, are empty, or a type id has no
/// particles in the reference.
pub fn icp_align(reference: &[Vec2], moving: &[Vec2], types: &[u16], cfg: &IcpConfig) -> IcpResult {
    icp_align_with(&mut IcpScratch::new(), reference, moving, types, cfg)
}

/// [`icp_align`] with caller-provided scratch — the allocation-free form.
/// Results are identical to [`icp_align`].
pub fn icp_align_with(
    scratch: &mut IcpScratch,
    reference: &[Vec2],
    moving: &[Vec2],
    types: &[u16],
    cfg: &IcpConfig,
) -> IcpResult {
    assert_eq!(reference.len(), moving.len(), "icp_align: size mismatch");
    assert_eq!(reference.len(), types.len(), "icp_align: types mismatch");
    assert!(!reference.is_empty(), "icp_align: empty configurations");
    assert!(cfg.restarts >= 1 && cfg.max_iterations >= 1);

    let type_count = types.iter().map(|&t| t as usize + 1).max().unwrap_or(1);
    // Work in centred frames; the centring translations are composed back
    // into the final transform.
    let ref_centroid = Vec2::centroid(reference);
    let mov_centroid = Vec2::centroid(moving);
    let IcpScratch {
        ref_c,
        mov_c,
        targets,
        index,
    } = scratch;
    ref_c.clear();
    ref_c.extend(reference.iter().map(|&p| p - ref_centroid));
    mov_c.clear();
    mov_c.extend(moving.iter().map(|&p| p - mov_centroid));
    index.rebuild(ref_c, types, type_count);

    let mut best: Option<IcpResult> = None;
    targets.clear();
    targets.resize(mov_c.len(), Vec2::ZERO);
    for restart in 0..cfg.restarts {
        let angle = std::f64::consts::TAU * restart as f64 / cfg.restarts as f64;
        let mut t = RigidTransform::rotation(angle);
        let mut prev_cost = f64::INFINITY;
        let mut cost = f64::INFINITY;
        let mut iterations = 0;
        for it in 0..cfg.max_iterations {
            iterations = it + 1;
            // Correspondence phase: measure the cost of the current
            // transform and collect same-type nearest-neighbour targets.
            let mut acc = 0.0;
            for (i, &p) in mov_c.iter().enumerate() {
                let tp = t.apply(p);
                let j = index.nearest(tp, types[i] as usize);
                targets[i] = ref_c[j];
                acc += tp.dist_sq(ref_c[j]);
            }
            cost = acc / mov_c.len() as f64;
            if it > 0 && prev_cost - cost <= cfg.tolerance * prev_cost {
                break; // converged: `cost` belongs to the current `t`
            }
            prev_cost = cost;
            // Fit phase: refit from the *original* moving points to the
            // current targets (avoids compounding numerical drift).
            t = fit_rigid(mov_c, targets);
        }
        let candidate = IcpResult {
            transform: t,
            cost,
            iterations,
        };
        if best.is_none_or(|b| candidate.cost < b.cost) {
            best = Some(candidate);
        }
    }
    let mut result = best.expect("icp_align: at least one restart ran");
    // Compose: x ↦ T(x − mov_centroid) + ref_centroid.
    let centring = RigidTransform::translation(-mov_centroid);
    let uncentring = RigidTransform::translation(ref_centroid);
    result.transform = uncentring.compose(&result.transform.compose(&centring));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::PI;

    /// An asymmetric single-type cloud (no rotational symmetry, so the
    /// alignment optimum is unique).
    fn cloud() -> Vec<Vec2> {
        vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(2.0, 0.0),
            Vec2::new(3.0, 1.0),
            Vec2::new(-1.0, 2.5),
            Vec2::new(0.5, -1.5),
            Vec2::new(-2.0, -0.5),
        ]
    }

    #[test]
    fn aligns_rotated_copy_exactly() {
        let reference = cloud();
        let types = vec![0u16; reference.len()];
        let truth = RigidTransform {
            rotation: 2.1,
            translation: Vec2::new(5.0, -3.0),
        };
        // moving = truth^{-1}(reference): aligning moving back should find
        // a zero-cost transform.
        let moving: Vec<Vec2> = reference
            .iter()
            .map(|&p| truth.inverse().apply(p))
            .collect();
        let res = icp_align(&reference, &moving, &types, &IcpConfig::default());
        assert!(res.cost < 1e-18, "cost {}", res.cost);
        for (&m, &r) in moving.iter().zip(&reference) {
            assert!((res.transform.apply(m) - r).norm() < 1e-9);
        }
    }

    #[test]
    fn restarts_escape_large_rotations() {
        // A single ICP run from angle 0 gets stuck for a near-π rotation of
        // an elongated cloud; restarts must recover it.
        let reference = cloud();
        let types = vec![0u16; reference.len()];
        let truth = RigidTransform::rotation(PI * 0.95);
        let moving: Vec<Vec2> = reference
            .iter()
            .map(|&p| truth.inverse().apply(p))
            .collect();

        let no_restart = icp_align(
            &reference,
            &moving,
            &types,
            &IcpConfig {
                restarts: 1,
                ..IcpConfig::default()
            },
        );
        let with_restarts = icp_align(&reference, &moving, &types, &IcpConfig::default());
        assert!(with_restarts.cost < 1e-12);
        assert!(with_restarts.cost <= no_restart.cost);
    }

    #[test]
    fn types_prevent_cross_type_matching() {
        // Two types whose point clouds would align wrongly if types were
        // ignored: a type-0 pair and a type-1 pair arranged in a square so
        // the typeless optimum is a 90° rotation but the typed optimum is
        // identity.
        let reference = vec![
            Vec2::new(1.0, 0.0),
            Vec2::new(-1.0, 0.0),
            Vec2::new(0.0, 1.0),
            Vec2::new(0.0, -1.0),
        ];
        let types = vec![0u16, 0, 1, 1];
        // moving: slightly perturbed reference.
        let moving: Vec<Vec2> = reference
            .iter()
            .map(|&p| p + Vec2::new(0.01, -0.01))
            .collect();
        let res = icp_align(&reference, &moving, &types, &IcpConfig::default());
        // Rotation must be near 0, not near ±π/2 (which cross-type
        // matching would prefer equally).
        let wrapped = res.rotation_normalized();
        assert!(
            wrapped.abs() < 0.2,
            "typed alignment should be near identity, got {wrapped}"
        );
    }

    impl IcpResult {
        /// Rotation wrapped to (−π, π] for test assertions.
        fn rotation_normalized(&self) -> f64 {
            let mut a = self.transform.rotation % std::f64::consts::TAU;
            if a > PI {
                a -= std::f64::consts::TAU;
            }
            if a <= -PI {
                a += std::f64::consts::TAU;
            }
            a
        }
    }

    #[test]
    fn noisy_alignment_has_bounded_cost() {
        let reference = cloud();
        let types = vec![0u16; reference.len()];
        let mut rng = sops_math::SplitMix64::new(77);
        let truth = RigidTransform::rotation(1.0);
        let moving: Vec<Vec2> = reference
            .iter()
            .map(|&p| {
                truth.inverse().apply(p)
                    + Vec2::new(rng.next_range(-0.05, 0.05), rng.next_range(-0.05, 0.05))
            })
            .collect();
        let res = icp_align(&reference, &moving, &types, &IcpConfig::default());
        assert!(res.cost < 0.01, "cost {} too high for 0.05 noise", res.cost);
    }

    #[test]
    fn single_particle_alignment() {
        let res = icp_align(
            &[Vec2::new(3.0, 4.0)],
            &[Vec2::new(-1.0, 2.0)],
            &[0],
            &IcpConfig::default(),
        );
        assert!((res.transform.apply(Vec2::new(-1.0, 2.0)) - Vec2::new(3.0, 4.0)).norm() < 1e-12);
        assert!(res.cost < 1e-20);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn random_rigid_motions_recovered(angle in -PI..PI, tx in -5.0..5.0f64, ty in -5.0..5.0f64, seed in 0..u64::MAX) {
            let mut rng = sops_math::SplitMix64::new(seed);
            let reference: Vec<Vec2> = (0..15)
                .map(|_| Vec2::new(rng.next_range(-4.0, 4.0), rng.next_range(-4.0, 4.0)))
                .collect();
            let types: Vec<u16> = (0..15).map(|i| (i % 3) as u16).collect();
            let truth = RigidTransform { rotation: angle, translation: Vec2::new(tx, ty) };
            let moving: Vec<Vec2> = reference.iter().map(|&p| truth.inverse().apply(p)).collect();
            let res = icp_align(&reference, &moving, &types, &IcpConfig::default());
            prop_assert!(res.cost < 1e-10, "cost {}", res.cost);
        }
    }
}
