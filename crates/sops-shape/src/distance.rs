//! Shape distance and shape-category clustering.
//!
//! The Procrustes-style distance between two typed configurations is the
//! root-mean-square residual after the optimal rigid alignment (type-aware
//! ICP) and same-type re-indexing — i.e. distance in the quotient space
//! `Z / (ISO⁺(2) × S*_n)` the paper's observers live in (§4.2).
//!
//! On top of it, [`cluster_shapes`] groups an ensemble's final
//! configurations into shape categories by single-linkage clustering at a
//! distance threshold — making Fig. 6's "several visually distinguishable
//! categories" a measurable quantity.

use crate::icp::{icp_align, IcpConfig};
use crate::permutation::{match_types, matching_cost};
use sops_math::Vec2;

/// Root-mean-square distance between two configurations after optimal
/// alignment and type-preserving matching.
///
/// Symmetric up to ICP local optima (alignment runs from `b` onto `a`);
/// callers needing guaranteed symmetry can average both directions.
pub fn shape_distance(a: &[Vec2], b: &[Vec2], types: &[u16], cfg: &IcpConfig) -> f64 {
    assert_eq!(a.len(), b.len(), "shape_distance: size mismatch");
    assert_eq!(a.len(), types.len(), "shape_distance: types mismatch");
    let mut a_c = a.to_vec();
    let mut b_c = b.to_vec();
    crate::center(&mut a_c);
    crate::center(&mut b_c);
    let res = icp_align(&a_c, &b_c, types, cfg);
    res.transform.apply_all(&mut b_c);
    let perm = match_types(&a_c, &b_c, types);
    (matching_cost(&a_c, &b_c, &perm) / a.len() as f64).sqrt()
}

/// Single-linkage clustering of configurations at a shape-distance
/// threshold; returns a category label per configuration (labels are
/// 0-based, ordered by first occurrence).
///
/// `O(m²)` distance evaluations with a union-find merge — fine for the
/// gallery-sized inputs it serves (m ≤ a few hundred).
pub fn cluster_shapes(
    configs: &[&[Vec2]],
    types: &[u16],
    threshold: f64,
    cfg: &IcpConfig,
) -> Vec<usize> {
    let m = configs.len();
    let mut uf = UnionFind::new(m);
    for i in 0..m {
        for j in (i + 1)..m {
            if uf.find(i) == uf.find(j) {
                continue; // already linked through another sample
            }
            if shape_distance(configs[i], configs[j], types, cfg) <= threshold {
                uf.union(i, j);
            }
        }
    }
    // Canonical labels by first occurrence.
    let mut label_of_root = std::collections::HashMap::new();
    let mut labels = Vec::with_capacity(m);
    for i in 0..m {
        let root = uf.find(i);
        let next = label_of_root.len();
        labels.push(*label_of_root.entry(root).or_insert(next));
    }
    labels
}

/// Number of distinct categories in a label vector.
pub fn category_count(labels: &[usize]) -> usize {
    let mut seen: Vec<usize> = labels.to_vec();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

/// Path-compressed union-find.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kabsch::RigidTransform;
    use sops_math::SplitMix64;

    fn blob(seed: u64) -> Vec<Vec2> {
        let mut rng = SplitMix64::new(seed);
        (0..10)
            .map(|_| Vec2::new(rng.next_range(-3.0, 3.0), rng.next_range(-3.0, 3.0)))
            .collect()
    }

    #[test]
    fn identical_shapes_have_zero_distance() {
        let a = blob(1);
        let types = vec![0u16; a.len()];
        let d = shape_distance(&a, &a, &types, &IcpConfig::default());
        assert!(d < 1e-9, "self distance {d}");
        // Rigid copies too.
        let t = RigidTransform {
            rotation: 1.3,
            translation: Vec2::new(5.0, -2.0),
        };
        let moved: Vec<Vec2> = a.iter().map(|&p| t.apply(p)).collect();
        let d = shape_distance(&a, &moved, &types, &IcpConfig::default());
        assert!(d < 1e-6, "rigid-copy distance {d}");
    }

    #[test]
    fn different_shapes_have_positive_distance() {
        let a = blob(1);
        let b = blob(2);
        let types = vec![0u16; a.len()];
        let d = shape_distance(&a, &b, &types, &IcpConfig::default());
        assert!(d > 0.1, "distinct blobs: {d}");
    }

    #[test]
    fn distance_scales_with_perturbation() {
        let a = blob(3);
        let types = vec![0u16; a.len()];
        let mut rng = SplitMix64::new(9);
        let perturb = |scale: f64, rng: &mut SplitMix64| -> Vec<Vec2> {
            a.iter()
                .map(|&p| {
                    p + Vec2::new(rng.next_range(-scale, scale), rng.next_range(-scale, scale))
                })
                .collect()
        };
        let small = shape_distance(&a, &perturb(0.05, &mut rng), &types, &IcpConfig::default());
        let large = shape_distance(&a, &perturb(1.0, &mut rng), &types, &IcpConfig::default());
        assert!(small < large, "{small} !< {large}");
        assert!(small < 0.1);
    }

    #[test]
    fn clustering_separates_two_shape_families() {
        // Family A: rigid+noise copies of blob(1); family B: of blob(20).
        let base_a = blob(1);
        let base_b = blob(20);
        let types = vec![0u16; base_a.len()];
        let mut rng = SplitMix64::new(5);
        let mut configs: Vec<Vec<Vec2>> = Vec::new();
        for i in 0..4 {
            let t = RigidTransform {
                rotation: rng.next_range(-3.0, 3.0),
                translation: Vec2::new(rng.next_range(-5.0, 5.0), rng.next_range(-5.0, 5.0)),
            };
            let base = if i % 2 == 0 { &base_a } else { &base_b };
            configs.push(
                base.iter()
                    .map(|&p| {
                        t.apply(p)
                            + Vec2::new(rng.next_range(-0.02, 0.02), rng.next_range(-0.02, 0.02))
                    })
                    .collect(),
            );
        }
        let views: Vec<&[Vec2]> = configs.iter().map(|c| c.as_slice()).collect();
        let labels = cluster_shapes(&views, &types, 0.2, &IcpConfig::default());
        assert_eq!(category_count(&labels), 2, "labels {labels:?}");
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[1], labels[3]);
        assert_ne!(labels[0], labels[1]);
    }

    #[test]
    fn everything_merges_at_huge_threshold() {
        let configs = [blob(1), blob(2), blob(3)];
        let types = vec![0u16; configs[0].len()];
        let views: Vec<&[Vec2]> = configs.iter().map(|c| c.as_slice()).collect();
        let labels = cluster_shapes(&views, &types, 1e6, &IcpConfig::default());
        assert_eq!(category_count(&labels), 1);
    }

    #[test]
    fn nothing_merges_at_zero_threshold() {
        let configs = [blob(1), blob(2), blob(3)];
        let types = vec![0u16; configs[0].len()];
        let views: Vec<&[Vec2]> = configs.iter().map(|c| c.as_slice()).collect();
        let labels = cluster_shapes(&views, &types, 0.0, &IcpConfig::default());
        assert_eq!(category_count(&labels), 3);
    }
}
