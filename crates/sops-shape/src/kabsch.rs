//! Closed-form 2-D rigid alignment (the planar Kabsch / Procrustes fit).
//!
//! Given paired points `(p_i, q_i)`, find the rotation `R(θ)` and
//! translation `t` minimizing `Σ w_i ‖R p_i + t − q_i‖²`. In 2-D the
//! optimum has the closed form
//!
//! ```text
//! θ = atan2( Σ w_i p̃_i × q̃_i , Σ w_i p̃_i · q̃_i )
//! t = q̄ − R(θ) p̄
//! ```
//!
//! with `p̃, q̃` the centred points. The solution is always a *direct*
//! isometry (det R = +1), matching the paper's invariance group `ISO⁺(2)`
//! which excludes reflections.

use sops_math::Vec2;

/// A direct planar isometry `x ↦ R(θ) x + t`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RigidTransform {
    /// Rotation angle θ in radians.
    pub rotation: f64,
    /// Translation applied after the rotation.
    pub translation: Vec2,
}

impl RigidTransform {
    /// The identity transform.
    pub const IDENTITY: RigidTransform = RigidTransform {
        rotation: 0.0,
        translation: Vec2::ZERO,
    };

    /// A pure rotation about the origin.
    pub fn rotation(angle: f64) -> Self {
        RigidTransform {
            rotation: angle,
            translation: Vec2::ZERO,
        }
    }

    /// A pure translation.
    pub fn translation(t: Vec2) -> Self {
        RigidTransform {
            rotation: 0.0,
            translation: t,
        }
    }

    /// Applies the transform to one point.
    #[inline]
    pub fn apply(&self, p: Vec2) -> Vec2 {
        p.rotated(self.rotation) + self.translation
    }

    /// Applies the transform to every point in place.
    pub fn apply_all(&self, points: &mut [Vec2]) {
        for p in points.iter_mut() {
            *p = self.apply(*p);
        }
    }

    /// Composition: `(self ∘ other)(x) = self(other(x))`.
    pub fn compose(&self, other: &RigidTransform) -> RigidTransform {
        RigidTransform {
            rotation: self.rotation + other.rotation,
            translation: other.translation.rotated(self.rotation) + self.translation,
        }
    }

    /// The inverse transform.
    pub fn inverse(&self) -> RigidTransform {
        RigidTransform {
            rotation: -self.rotation,
            translation: (-self.translation).rotated(-self.rotation),
        }
    }
}

/// Fits the rigid transform minimizing `Σ ‖T(p_i) − q_i‖²` over paired
/// slices.
///
/// Degenerate inputs (all points coincident, or a single pair) yield the
/// pure translation mapping the `p` centroid onto the `q` centroid.
///
/// ```
/// use sops_math::Vec2;
/// use sops_shape::fit_rigid;
/// let p = [Vec2::new(0.0, 0.0), Vec2::new(1.0, 0.0)];
/// let q = [Vec2::new(2.0, 0.0), Vec2::new(2.0, 1.0)]; // p rotated 90° and shifted
/// let t = fit_rigid(&p, &q);
/// assert!((t.apply(p[1]) - q[1]).norm() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if the slices are empty or differ in length.
pub fn fit_rigid(p: &[Vec2], q: &[Vec2]) -> RigidTransform {
    assert!(!p.is_empty(), "fit_rigid: empty point sets");
    assert_eq!(p.len(), q.len(), "fit_rigid: length mismatch");
    let pc = Vec2::centroid(p);
    let qc = Vec2::centroid(q);
    let mut dot = 0.0;
    let mut cross = 0.0;
    for (a, b) in p.iter().zip(q) {
        let pa = *a - pc;
        let qb = *b - qc;
        dot += pa.dot(qb);
        cross += pa.cross(qb);
    }
    let rotation = if dot == 0.0 && cross == 0.0 {
        0.0
    } else {
        cross.atan2(dot)
    };
    let translation = qc - pc.rotated(rotation);
    RigidTransform {
        rotation,
        translation,
    }
}

/// Mean squared residual `⟨‖T(p_i) − q_i‖²⟩` of a fit — the alignment cost
/// used to pick among ICP restarts.
pub fn alignment_cost(t: &RigidTransform, p: &[Vec2], q: &[Vec2]) -> f64 {
    assert_eq!(p.len(), q.len());
    if p.is_empty() {
        return 0.0;
    }
    p.iter()
        .zip(q)
        .map(|(a, b)| t.apply(*a).dist_sq(*b))
        .sum::<f64>()
        / p.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::{FRAC_PI_3, PI};

    fn sample_cloud() -> Vec<Vec2> {
        vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(0.0, 2.0),
            Vec2::new(-1.5, 0.5),
            Vec2::new(0.7, -1.1),
        ]
    }

    #[test]
    fn identity_on_matching_sets() {
        let p = sample_cloud();
        let t = fit_rigid(&p, &p);
        assert!(t.rotation.abs() < 1e-12);
        assert!(t.translation.norm() < 1e-12);
        assert!(alignment_cost(&t, &p, &p) < 1e-24);
    }

    #[test]
    fn recovers_known_rotation_translation() {
        let p = sample_cloud();
        let truth = RigidTransform {
            rotation: FRAC_PI_3,
            translation: Vec2::new(3.0, -2.0),
        };
        let q: Vec<Vec2> = p.iter().map(|&x| truth.apply(x)).collect();
        let fitted = fit_rigid(&p, &q);
        assert!((fitted.rotation - truth.rotation).abs() < 1e-12);
        assert!((fitted.translation - truth.translation).norm() < 1e-12);
        assert!(alignment_cost(&fitted, &p, &q) < 1e-20);
    }

    #[test]
    fn single_pair_gives_translation() {
        let t = fit_rigid(&[Vec2::new(1.0, 1.0)], &[Vec2::new(4.0, 5.0)]);
        assert_eq!(t.rotation, 0.0);
        assert_eq!(t.translation, Vec2::new(3.0, 4.0));
    }

    #[test]
    fn coincident_cloud_degenerate_case() {
        let p = vec![Vec2::new(2.0, 2.0); 4];
        let q = vec![Vec2::new(-1.0, 0.0); 4];
        let t = fit_rigid(&p, &q);
        assert_eq!(t.rotation, 0.0);
        assert!((t.apply(p[0]) - q[0]).norm() < 1e-12);
    }

    #[test]
    fn compose_and_inverse() {
        let a = RigidTransform {
            rotation: 0.7,
            translation: Vec2::new(1.0, -2.0),
        };
        let b = RigidTransform {
            rotation: -1.3,
            translation: Vec2::new(0.5, 0.5),
        };
        let x = Vec2::new(3.0, 4.0);
        let via_compose = a.compose(&b).apply(x);
        let sequential = a.apply(b.apply(x));
        assert!((via_compose - sequential).norm() < 1e-12);

        let round_trip = a.inverse().apply(a.apply(x));
        assert!((round_trip - x).norm() < 1e-12);
    }

    #[test]
    fn no_reflection_even_when_reflection_fits_better() {
        // q is p mirrored; the best direct isometry cannot achieve zero
        // cost, and the fit must still return a proper rotation.
        let p = sample_cloud();
        let q: Vec<Vec2> = p.iter().map(|v| Vec2::new(-v.x, v.y)).collect();
        let t = fit_rigid(&p, &q);
        let cost = alignment_cost(&t, &p, &q);
        assert!(cost > 1e-3, "mirror cannot be matched by rotation: {cost}");
    }

    #[test]
    fn half_turn_recovered() {
        let p = sample_cloud();
        let truth = RigidTransform::rotation(PI);
        let q: Vec<Vec2> = p.iter().map(|&x| truth.apply(x)).collect();
        let fitted = fit_rigid(&p, &q);
        assert!(alignment_cost(&fitted, &p, &q) < 1e-20);
    }

    proptest! {
        #[test]
        fn recovers_random_transforms(
            angle in -PI..PI,
            tx in -10.0..10.0f64,
            ty in -10.0..10.0f64,
            seed in 0..u64::MAX
        ) {
            let mut rng = sops_math::SplitMix64::new(seed);
            let p: Vec<Vec2> = (0..12)
                .map(|_| Vec2::new(rng.next_range(-5.0, 5.0), rng.next_range(-5.0, 5.0)))
                .collect();
            let truth = RigidTransform { rotation: angle, translation: Vec2::new(tx, ty) };
            let q: Vec<Vec2> = p.iter().map(|&x| truth.apply(x)).collect();
            let fitted = fit_rigid(&p, &q);
            prop_assert!(alignment_cost(&fitted, &p, &q) < 1e-16);
        }

        #[test]
        fn cost_is_optimal_vs_perturbations(
            angle in -PI..PI,
            seed in 0..u64::MAX,
            d_angle in -0.3..0.3f64
        ) {
            prop_assume!(d_angle.abs() > 1e-6);
            let mut rng = sops_math::SplitMix64::new(seed);
            let p: Vec<Vec2> = (0..10)
                .map(|_| Vec2::new(rng.next_range(-5.0, 5.0), rng.next_range(-5.0, 5.0)))
                .collect();
            // Noisy target so the optimum is non-trivial.
            let truth = RigidTransform { rotation: angle, translation: Vec2::new(1.0, 1.0) };
            let q: Vec<Vec2> = p
                .iter()
                .map(|&x| truth.apply(x) + Vec2::new(rng.next_range(-0.1, 0.1), rng.next_range(-0.1, 0.1)))
                .collect();
            let fitted = fit_rigid(&p, &q);
            let perturbed = RigidTransform {
                rotation: fitted.rotation + d_angle,
                translation: fitted.translation,
            };
            // Re-optimize translation for the perturbed rotation to make the
            // comparison fair (translation optimum depends on rotation).
            let pc = Vec2::centroid(&p);
            let qc = Vec2::centroid(&q);
            let perturbed = RigidTransform {
                rotation: perturbed.rotation,
                translation: qc - pc.rotated(perturbed.rotation),
            };
            prop_assert!(
                alignment_cost(&fitted, &p, &q) <= alignment_cost(&perturbed, &p, &q) + 1e-12
            );
        }
    }
}
