//! Whole-ensemble reduction: centre, align and re-index every sample of a
//! cross-sample slice (all samples at one time step) against a common
//! reference (paper §5.2).
//!
//! The output configurations live in the reduced shape space `W`: their
//! statistics feed the multi-information estimator. The correspondence
//! established here links particles *across samples* at a fixed time; the
//! paper notes the particle identity *over time* is deliberately lost.

use crate::icp::{icp_align_with, IcpConfig, IcpScratch};
use crate::permutation::{apply_matching, match_types_into, MatchScratch};
use sops_math::Vec2;

/// How much of the shape-space reduction to apply per sample.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ReduceMode {
    /// Centre → ICP-align → optimal same-type re-indexing (paper §5.2).
    /// The Hungarian matching step is O(k³) in the per-type particle
    /// count, which caps this mode at lab scale.
    #[default]
    Full,
    /// Centre on the centroid only: translation-free but not rotation- or
    /// permutation-reduced. Linear in `n` — the tractable mode for the
    /// 10⁵-particle gallery scenarios, where type-mean observers make the
    /// per-particle correspondence irrelevant anyway.
    Centred,
}

/// Configuration for [`reduce_configurations`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ReduceConfig {
    /// ICP parameters used per sample.
    pub icp: IcpConfig,
    /// Index of the sample used as alignment reference.
    pub reference: usize,
    /// Worker threads (0 = default).
    pub threads: usize,
    /// Which reduction steps to apply.
    pub mode: ReduceMode,
}

/// The reduced (isometry- and permutation-free) representative of each
/// sample, plus per-sample alignment costs for diagnostics.
#[derive(Debug, Clone)]
pub struct ReducedSet {
    /// `configs[s][i]` — position of (reference-indexed) particle `i` in
    /// reduced sample `s`.
    pub configs: Vec<Vec<Vec2>>,
    /// Final ICP mean squared correspondence distance per sample (0 for
    /// the reference itself).
    pub icp_costs: Vec<f64>,
}

/// Per-worker scratch of the reduction loop: ICP buffers and index,
/// Hungarian matching buffers, and the moving-configuration staging
/// vectors. Each worker reuses its scratch across every sample it claims.
#[derive(Debug, Clone, Default)]
struct ReduceScratch {
    icp: IcpScratch,
    matching: MatchScratch,
    moving: Vec<Vec2>,
    perm: Vec<usize>,
}

impl ReduceScratch {
    fn capacity_signature(&self, sig: &mut Vec<usize>) {
        self.icp.capacity_signature(sig);
        self.matching.capacity_signature(sig);
        sig.push(self.moving.capacity());
        sig.push(self.perm.capacity());
    }
}

/// Persistent buffers for [`reduce_configurations_with`]: one
/// [`ReduceScratch`] per reduction worker plus the shared centred
/// reference. The pipeline's evaluation workers hold one workspace each,
/// so the per-sample ICP/Hungarian scratch is reused across every time
/// step a worker claims — the shape-space sibling of
/// `sops_info::MeasureWorkspace`.
#[derive(Debug, Clone, Default)]
pub struct ReduceWorkspace {
    workers: Vec<ReduceScratch>,
    reference: Vec<Vec2>,
}

impl ReduceWorkspace {
    /// An empty workspace; buffers grow to the workload size on first use.
    pub fn new() -> Self {
        ReduceWorkspace::default()
    }

    /// Capacities of every internal buffer — constant for a warmed-up
    /// workspace driving a bounded workload (the zero-allocation
    /// contract; the per-sample *output* configurations are the return
    /// value and excluded, like every workspace in this repo).
    pub fn capacity_signature(&self) -> Vec<usize> {
        let mut sig = vec![self.workers.len(), self.reference.capacity()];
        for worker in &self.workers {
            worker.capacity_signature(&mut sig);
        }
        sig
    }
}

/// Reduces every sample in `samples` (one configuration per ensemble run,
/// all at the same time step) to the canonical shape frame.
///
/// Steps per sample: centre on centroid → ICP-align to the centred
/// reference sample → optimal same-type re-indexing to reference order.
///
/// Convenience shim over [`reduce_configurations_with`]; repeated callers
/// (the pipeline's evaluation loop) should hold a [`ReduceWorkspace`].
///
/// # Panics
///
/// Panics if `samples` is empty, sizes are inconsistent, or
/// `cfg.reference` is out of range.
pub fn reduce_configurations(samples: &[&[Vec2]], types: &[u16], cfg: &ReduceConfig) -> ReducedSet {
    reduce_configurations_with(&mut ReduceWorkspace::new(), samples, types, cfg)
}

/// [`reduce_configurations`] with persistent per-worker scratch — the
/// form the pipeline's evaluation workers drive. Results are identical
/// to [`reduce_configurations`] for any worker count (outputs are written
/// into per-sample slots; the scratch only caches buffer capacity).
pub fn reduce_configurations_with(
    ws: &mut ReduceWorkspace,
    samples: &[&[Vec2]],
    types: &[u16],
    cfg: &ReduceConfig,
) -> ReducedSet {
    assert!(!samples.is_empty(), "reduce_configurations: no samples");
    assert!(
        cfg.reference < samples.len(),
        "reduce_configurations: reference index out of range"
    );
    let n = types.len();
    assert!(
        samples.iter().all(|s| s.len() == n),
        "reduce_configurations: sample size mismatch"
    );

    // Centred reference.
    ws.reference.clear();
    ws.reference.extend_from_slice(samples[cfg.reference]);
    crate::center(&mut ws.reference);

    let threads = if cfg.threads == 0 {
        sops_par::default_threads()
    } else {
        cfg.threads
    };
    let threads = threads.max(1).min(samples.len());
    while ws.workers.len() < threads {
        ws.workers.push(ReduceScratch::default());
    }
    let ReduceWorkspace { workers, reference } = ws;
    let reference = &*reference;
    let reduced: Vec<(Vec<Vec2>, f64)> =
        sops_par::parallel_map_with(samples.len(), &mut workers[..threads], |scratch, s| {
            if s == cfg.reference {
                return (reference.clone(), 0.0);
            }
            let ReduceScratch {
                icp,
                matching,
                moving,
                perm,
            } = scratch;
            moving.clear();
            moving.extend_from_slice(samples[s]);
            crate::center(moving);
            if cfg.mode == ReduceMode::Centred {
                return (moving.clone(), 0.0);
            }
            let res = icp_align_with(icp, reference, moving, types, &cfg.icp);
            res.transform.apply_all(moving);
            match_types_into(matching, reference, moving, types, perm);
            (apply_matching(perm, moving), res.cost)
        });

    let mut configs = Vec::with_capacity(reduced.len());
    let mut icp_costs = Vec::with_capacity(reduced.len());
    for (c, cost) in reduced {
        configs.push(c);
        icp_costs.push(cost);
    }
    ReducedSet { configs, icp_costs }
}

/// Flattens a reduced set into the `m × 2n` row-major sample matrix the
/// estimators consume: row `s` is `(x₀, y₀, x₁, y₁, …)` of sample `s`.
pub fn flatten_reduced(set: &ReducedSet) -> Vec<f64> {
    let mut out = Vec::with_capacity(set.configs.len() * set.configs[0].len() * 2);
    for cfg in &set.configs {
        for p in cfg {
            out.push(p.x);
            out.push(p.y);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kabsch::RigidTransform;

    fn base_shape() -> (Vec<Vec2>, Vec<u16>) {
        let pts = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(2.0, 0.5),
            Vec2::new(-1.0, 1.5),
            Vec2::new(0.5, -2.0),
            Vec2::new(3.0, 2.0),
        ];
        let types = vec![0u16, 0, 1, 1, 2];
        (pts, types)
    }

    #[test]
    fn identical_shapes_reduce_identically() {
        // Every sample is a rigidly transformed + shuffled copy of the same
        // shape; after reduction all samples must coincide.
        let (base, types) = base_shape();
        let transforms = [
            RigidTransform::IDENTITY,
            RigidTransform {
                rotation: 1.0,
                translation: Vec2::new(10.0, -5.0),
            },
            RigidTransform {
                rotation: -2.5,
                translation: Vec2::new(-3.0, 7.0),
            },
        ];
        // Shuffle within type: swap particles 0<->1 (both type 0) in sample 2.
        let mut samples: Vec<Vec<Vec2>> = transforms
            .iter()
            .map(|t| base.iter().map(|&p| t.apply(p)).collect())
            .collect();
        samples[2].swap(0, 1);
        let views: Vec<&[Vec2]> = samples.iter().map(|s| s.as_slice()).collect();
        let reduced = reduce_configurations(&views, &types, &ReduceConfig::default());
        for s in 1..reduced.configs.len() {
            for i in 0..base.len() {
                assert!(
                    (reduced.configs[s][i] - reduced.configs[0][i]).norm() < 1e-6,
                    "sample {s} particle {i}: {:?} vs {:?}",
                    reduced.configs[s][i],
                    reduced.configs[0][i]
                );
            }
        }
        assert!(reduced.icp_costs.iter().all(|&c| c < 1e-9));
    }

    #[test]
    fn reduced_configs_are_centred() {
        let (base, types) = base_shape();
        let shifted: Vec<Vec2> = base.iter().map(|&p| p + Vec2::new(100.0, 50.0)).collect();
        let views: Vec<&[Vec2]> = vec![&base, &shifted];
        let reduced = reduce_configurations(&views, &types, &ReduceConfig::default());
        for cfg in &reduced.configs {
            assert!(Vec2::centroid(cfg).norm() < 1e-9);
        }
    }

    #[test]
    fn flatten_layout() {
        let set = ReducedSet {
            configs: vec![
                vec![Vec2::new(1.0, 2.0), Vec2::new(3.0, 4.0)],
                vec![Vec2::new(5.0, 6.0), Vec2::new(7.0, 8.0)],
            ],
            icp_costs: vec![0.0, 0.0],
        };
        assert_eq!(
            flatten_reduced(&set),
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]
        );
    }

    #[test]
    fn reference_choice_changes_frame_not_shape() {
        let (base, types) = base_shape();
        let rot: Vec<Vec2> = base
            .iter()
            .map(|&p| RigidTransform::rotation(0.8).apply(p))
            .collect();
        let views: Vec<&[Vec2]> = vec![&base, &rot];
        let r0 = reduce_configurations(&views, &types, &ReduceConfig::default());
        let r1 = reduce_configurations(
            &views,
            &types,
            &ReduceConfig {
                reference: 1,
                ..ReduceConfig::default()
            },
        );
        // Same pairwise distance structure regardless of reference frame.
        for s in 0..2 {
            for i in 0..base.len() {
                for j in (i + 1)..base.len() {
                    let d0 = r0.configs[s][i].dist(r0.configs[s][j]);
                    let d1 = r1.configs[s][i].dist(r1.configs[s][j]);
                    assert!((d0 - d1).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn centred_mode_skips_alignment_but_centres() {
        let (base, types) = base_shape();
        let rot: Vec<Vec2> = base
            .iter()
            .map(|&p| {
                RigidTransform {
                    rotation: 0.8,
                    translation: Vec2::new(50.0, -20.0),
                }
                .apply(p)
            })
            .collect();
        let views: Vec<&[Vec2]> = vec![&base, &rot];
        let cfg = ReduceConfig {
            mode: ReduceMode::Centred,
            ..ReduceConfig::default()
        };
        let reduced = reduce_configurations(&views, &types, &cfg);
        // Every output is centred and every cost is exactly zero (no ICP ran).
        for c in &reduced.configs {
            assert!(Vec2::centroid(c).norm() < 1e-9);
        }
        assert_eq!(reduced.icp_costs, vec![0.0, 0.0]);
        // The rotation survives: sample 1 is NOT aligned to sample 0.
        assert!((reduced.configs[1][1] - reduced.configs[0][1]).norm() > 1e-3);
        // But pairwise distances (the shape) are untouched by centring.
        for i in 0..base.len() {
            for j in (i + 1)..base.len() {
                let d0 = base[i].dist(base[j]);
                let d1 = reduced.configs[1][i].dist(reduced.configs[1][j]);
                assert!((d0 - d1).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn threads_do_not_change_output() {
        let (base, types) = base_shape();
        let mut samples = Vec::new();
        let mut rng = sops_math::SplitMix64::new(4);
        for _ in 0..6 {
            let t = RigidTransform {
                rotation: rng.next_range(-3.0, 3.0),
                translation: Vec2::new(rng.next_range(-5.0, 5.0), rng.next_range(-5.0, 5.0)),
            };
            samples.push(base.iter().map(|&p| t.apply(p)).collect::<Vec<_>>());
        }
        let views: Vec<&[Vec2]> = samples.iter().map(|s| s.as_slice()).collect();
        let a = reduce_configurations(
            &views,
            &types,
            &ReduceConfig {
                threads: 1,
                ..ReduceConfig::default()
            },
        );
        let b = reduce_configurations(
            &views,
            &types,
            &ReduceConfig {
                threads: 8,
                ..ReduceConfig::default()
            },
        );
        assert_eq!(a.configs, b.configs);
    }
}
