//! Shape-space reduction (paper §4.2 and §5.2).
//!
//! The observable *shape* of a particle configuration is invariant under
//! the group `F = ISO⁺(2) × S*_n`: direct isometries (translation +
//! rotation, no reflection) and permutations of same-type particles. To
//! measure multi-information over shapes, every sample of an ensemble is
//! mapped to a canonical representative:
//!
//! 1. **centre** on the centroid ([`center`]),
//! 2. **rotate** into alignment with a reference sample using a type-aware
//!    ICP ([`icp`]) built on closed-form 2-D rigid fits ([`kabsch`]),
//! 3. **re-index** particles by optimal same-type correspondence with the
//!    reference ([`permutation`], Hungarian assignment in [`assignment`]).
//!
//! The paper used the PCL ICP implementation with types embedded as a
//! scaled third coordinate; per-type nearest-neighbour correspondence is
//! mathematically identical once the type offset exceeds the collective's
//! diameter (DESIGN.md, substitutions), and is what [`icp`] implements
//! directly.

pub mod assignment;
pub mod distance;
pub mod ensemble;
pub mod icp;
pub mod kabsch;
pub mod permutation;

pub use assignment::{hungarian, hungarian_with, HungarianScratch};
pub use distance::{cluster_shapes, shape_distance};
pub use ensemble::{
    reduce_configurations, reduce_configurations_with, ReduceConfig, ReduceMode, ReduceWorkspace,
};
pub use icp::{icp_align, icp_align_with, IcpConfig, IcpResult, IcpScratch};
pub use kabsch::{fit_rigid, RigidTransform};
pub use permutation::{match_types, match_types_into, MatchScratch};

use sops_math::Vec2;

/// Translates a configuration so its centroid is at the origin, returning
/// the removed centroid.
pub fn center(points: &mut [Vec2]) -> Vec2 {
    let c = Vec2::centroid(points);
    for p in points.iter_mut() {
        *p -= c;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn center_moves_centroid_to_origin() {
        let mut pts = vec![Vec2::new(1.0, 1.0), Vec2::new(3.0, 5.0)];
        let c = center(&mut pts);
        assert_eq!(c, Vec2::new(2.0, 3.0));
        assert!(Vec2::centroid(&pts).norm() < 1e-12);
    }
}
