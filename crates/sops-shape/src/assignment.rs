//! Minimum-cost perfect matching (Hungarian algorithm).
//!
//! The permutation-reduction step (paper §5.2) needs a *bijective*
//! correspondence between same-type particles of a sample and the
//! reference. Greedy nearest-neighbour matching — what a plain ICP
//! correspondence search yields — can map two particles onto the same
//! reference particle; re-indexing then loses particles. The Hungarian
//! algorithm provides the optimal bijection in `O(n³)`, which is trivial
//! at the paper's scales (n ≤ 120 per type).
//!
//! Implementation: Jonker–Volgenant-style shortest augmenting paths with
//! row/column potentials (the standard `O(n³)` formulation).

/// Reusable buffers for [`hungarian_with`]: the potentials, matching and
/// path arrays the solver needs, grown on demand and reused across calls.
///
/// The historical entry point allocated six vectors per call — two of
/// them (`minv`, `used`) *per augmenting row*, i.e. `O(n)` allocations
/// per solve. The shape-reduction loop solves one assignment per sample
/// per evaluated time step, so the eval workers hold this scratch in
/// their [`crate::ensemble::ReduceWorkspace`].
#[derive(Debug, Clone, Default)]
pub struct HungarianScratch {
    u: Vec<f64>,
    v: Vec<f64>,
    p: Vec<usize>,
    way: Vec<usize>,
    minv: Vec<f64>,
    used: Vec<bool>,
}

impl HungarianScratch {
    /// Empty scratch; buffers grow to the problem size on first use.
    pub fn new() -> Self {
        HungarianScratch::default()
    }

    /// Capacities of the internal buffers (zero-allocation contract).
    pub fn capacity_signature(&self, sig: &mut Vec<usize>) {
        sig.push(self.u.capacity());
        sig.push(self.v.capacity());
        sig.push(self.p.capacity());
        sig.push(self.way.capacity());
        sig.push(self.minv.capacity());
        sig.push(self.used.capacity());
    }
}

/// Solves the square assignment problem for the given row-major `n × n`
/// cost matrix.
///
/// Returns `(assignment, total_cost)` where `assignment[row] = col`.
/// Deterministic for ties (lowest augmenting column wins by scan order).
///
/// ```
/// use sops_shape::hungarian;
/// // Cheapest matching of [[4, 1], [2, 3]] picks the anti-diagonal.
/// let (assignment, cost) = hungarian(2, &[4.0, 1.0, 2.0, 3.0]);
/// assert_eq!(assignment, vec![1, 0]);
/// assert_eq!(cost, 3.0);
/// ```
///
/// Convenience shim over [`hungarian_with`]; repeated callers should hold
/// a [`HungarianScratch`].
///
/// # Panics
///
/// Panics if `costs.len() != n * n`, if `n == 0`, or if any cost is NaN.
pub fn hungarian(n: usize, costs: &[f64]) -> (Vec<usize>, f64) {
    let mut scratch = HungarianScratch::new();
    let mut assignment = Vec::new();
    let cost = hungarian_with(&mut scratch, n, costs, &mut assignment);
    (assignment, cost)
}

/// [`hungarian`] with caller-provided scratch and output buffer — the
/// allocation-free form. `assignment` is cleared and filled with
/// `assignment[row] = col`; the total cost is returned. Results are
/// identical to [`hungarian`].
pub fn hungarian_with(
    scratch: &mut HungarianScratch,
    n: usize,
    costs: &[f64],
    assignment: &mut Vec<usize>,
) -> f64 {
    assert!(n > 0, "hungarian: empty problem");
    assert_eq!(costs.len(), n * n, "hungarian: cost matrix shape");
    assert!(
        costs.iter().all(|c| !c.is_nan()),
        "hungarian: NaN cost entry"
    );

    // Potentials u (rows, 1-based) and v (columns, 0 = virtual start).
    let HungarianScratch {
        u,
        v,
        p,
        way,
        minv,
        used,
    } = scratch;
    reset(u, n + 1, 0.0);
    reset(v, n + 1, 0.0);
    // p[j] = row matched to column j (0 = unmatched), 1-based rows.
    reset(p, n + 1, 0usize);
    // way[j] = previous column on the augmenting path.
    reset(way, n + 1, 0usize);

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        reset(minv, n + 1, f64::INFINITY);
        reset(used, n + 1, false);
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = costs[(i0 - 1) * n + (j - 1)] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            debug_assert!(delta.is_finite(), "hungarian: no augmenting column");
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Unwind the augmenting path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    reset(assignment, n, usize::MAX);
    for j in 1..=n {
        if p[j] > 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    assignment
        .iter()
        .enumerate()
        .map(|(r, &c)| costs[r * n + c])
        .sum()
}

/// Clears and refills a scratch vector with `len` copies of `value` —
/// allocation-free once the capacity has grown to the workload size.
fn reset<T: Clone>(buf: &mut Vec<T>, len: usize, value: T) {
    buf.clear();
    buf.resize(len, value);
}

/// Brute-force optimal assignment by permutation enumeration — test
/// reference, usable up to n ≈ 8.
#[doc(hidden)]
pub fn brute_force_assignment(n: usize, costs: &[f64]) -> (Vec<usize>, f64) {
    assert!(n <= 9, "brute force assignment explodes past n = 9");
    let mut perm: Vec<usize> = (0..n).collect();
    let mut best_perm = perm.clone();
    let mut best = f64::INFINITY;
    permute(&mut perm, 0, &mut |p| {
        let cost: f64 = p.iter().enumerate().map(|(r, &c)| costs[r * n + c]).sum();
        if cost < best {
            best = cost;
            best_perm = p.to_vec();
        }
    });
    (best_perm, best)
}

fn permute(arr: &mut [usize], k: usize, f: &mut impl FnMut(&[usize])) {
    if k == arr.len() {
        f(arr);
        return;
    }
    for i in k..arr.len() {
        arr.swap(k, i);
        permute(arr, k + 1, f);
        arr.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn one_by_one() {
        let (a, c) = hungarian(1, &[5.0]);
        assert_eq!(a, vec![0]);
        assert_eq!(c, 5.0);
    }

    #[test]
    fn classic_three_by_three() {
        // Optimal: 0->1 (2), 1->0 (3), 2->2 (2) = 7? Let's use a known case:
        // [[4, 1, 3], [2, 0, 5], [3, 2, 2]] -> optimum 1 + 2 + 2 = 5.
        let costs = [4.0, 1.0, 3.0, 2.0, 0.0, 5.0, 3.0, 2.0, 2.0];
        let (a, c) = hungarian(3, &costs);
        assert_eq!(c, 5.0);
        assert_eq!(a, vec![1, 0, 2]);
    }

    #[test]
    fn identity_is_optimal_for_diagonal_dominance() {
        // Zero diagonal, positive off-diagonal.
        let n = 5;
        let mut costs = vec![1.0; n * n];
        for i in 0..n {
            costs[i * n + i] = 0.0;
        }
        let (a, c) = hungarian(n, &costs);
        assert_eq!(a, (0..n).collect::<Vec<_>>());
        assert_eq!(c, 0.0);
    }

    #[test]
    fn anti_diagonal_case() {
        // Cheapest is the reversal permutation.
        let n = 4;
        let mut costs = vec![10.0; n * n];
        for i in 0..n {
            costs[i * n + (n - 1 - i)] = 1.0;
        }
        let (a, c) = hungarian(n, &costs);
        assert_eq!(a, vec![3, 2, 1, 0]);
        assert_eq!(c, 4.0);
    }

    #[test]
    fn negative_costs_supported() {
        let costs = [-5.0, 0.0, 0.0, -5.0];
        let (a, c) = hungarian(2, &costs);
        assert_eq!(a, vec![0, 1]);
        assert_eq!(c, -10.0);
    }

    #[test]
    fn reused_scratch_matches_fresh_solver() {
        let mut rng = sops_math::SplitMix64::new(77);
        let mut scratch = HungarianScratch::new();
        let mut assignment = Vec::new();
        // Mixed problem sizes through one scratch: identical to fresh.
        for n in [5usize, 12, 3, 9, 12] {
            let costs: Vec<f64> = (0..n * n).map(|_| rng.next_range(-5.0, 5.0)).collect();
            let cost = hungarian_with(&mut scratch, n, &costs, &mut assignment);
            let (fresh_assignment, fresh_cost) = hungarian(n, &costs);
            assert_eq!(assignment, fresh_assignment, "n={n}");
            assert_eq!(cost.to_bits(), fresh_cost.to_bits(), "n={n}");
        }
    }

    #[test]
    fn assignment_is_a_permutation() {
        let mut rng = sops_math::SplitMix64::new(5);
        let n = 20;
        let costs: Vec<f64> = (0..n * n).map(|_| rng.next_range(0.0, 100.0)).collect();
        let (a, _) = hungarian(n, &costs);
        let mut seen = vec![false; n];
        for &c in &a {
            assert!(!seen[c], "column {c} assigned twice");
            seen[c] = true;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn matches_brute_force(n in 1..7usize, seed in 0..u64::MAX) {
            let mut rng = sops_math::SplitMix64::new(seed);
            let costs: Vec<f64> = (0..n * n).map(|_| rng.next_range(-10.0, 10.0)).collect();
            let (_, fast) = hungarian(n, &costs);
            let (_, slow) = brute_force_assignment(n, &costs);
            prop_assert!((fast - slow).abs() < 1e-9, "hungarian {fast} vs brute {slow}");
        }

        #[test]
        fn cost_no_worse_than_identity_and_reversal(n in 2..12usize, seed in 0..u64::MAX) {
            let mut rng = sops_math::SplitMix64::new(seed);
            let costs: Vec<f64> = (0..n * n).map(|_| rng.next_range(0.0, 50.0)).collect();
            let (_, best) = hungarian(n, &costs);
            let identity: f64 = (0..n).map(|i| costs[i * n + i]).sum();
            let reversal: f64 = (0..n).map(|i| costs[i * n + (n - 1 - i)]).sum();
            prop_assert!(best <= identity + 1e-9);
            prop_assert!(best <= reversal + 1e-9);
        }
    }
}
