//! Cross-sample permutation reduction (paper §5.2).
//!
//! After rigid alignment, particles of the same type are re-indexed so
//! that "particles close to each other in different samples at the same
//! time are considered to represent the same particle". The optimal
//! type-preserving bijection minimizing total squared distance is computed
//! per type with the Hungarian algorithm (see [`crate::assignment`] for
//! why greedy nearest-neighbour is not enough).

use crate::assignment::{hungarian_with, HungarianScratch};
use sops_math::Vec2;

/// Reusable buffers for [`match_types_into`]: per-type index groups, the
/// per-type cost matrix and assignment, and the Hungarian solver's own
/// scratch. The shape-reduction workers hold one per worker
/// ([`crate::ensemble::ReduceWorkspace`]) so the permutation step stops
/// allocating per sample.
#[derive(Debug, Clone, Default)]
pub struct MatchScratch {
    /// Global indices grouped by type (outer vec never shrinks).
    by_type: Vec<Vec<usize>>,
    /// Cost matrix of the type currently being matched.
    costs: Vec<f64>,
    /// Assignment output of the Hungarian solver.
    assignment: Vec<usize>,
    /// The solver's internal buffers.
    hungarian: HungarianScratch,
}

impl MatchScratch {
    /// Empty scratch; buffers grow to the workload size on first use.
    pub fn new() -> Self {
        MatchScratch::default()
    }

    /// Capacities of the internal buffers (zero-allocation contract).
    /// The signature length itself is part of the contract: a growing
    /// `by_type` shows up as a longer vector.
    pub fn capacity_signature(&self, sig: &mut Vec<usize>) {
        sig.push(self.by_type.len());
        for group in &self.by_type {
            sig.push(group.capacity());
        }
        sig.push(self.costs.capacity());
        sig.push(self.assignment.capacity());
        self.hungarian.capacity_signature(sig);
    }
}

/// Computes the type-preserving bijection between `reference` and
/// `moving` minimizing the total squared correspondence distance.
///
/// Returns `perm` with `perm[ref_index] = moving_index`: the moving
/// particle that plays the role of reference particle `ref_index`.
///
/// Convenience shim over [`match_types_into`]; repeated callers should
/// hold a [`MatchScratch`] and an output buffer.
///
/// # Panics
///
/// Panics if lengths mismatch.
pub fn match_types(reference: &[Vec2], moving: &[Vec2], types: &[u16]) -> Vec<usize> {
    let mut perm = Vec::new();
    match_types_into(
        &mut MatchScratch::new(),
        reference,
        moving,
        types,
        &mut perm,
    );
    perm
}

/// [`match_types`] with caller-provided scratch and output buffer — the
/// allocation-free form. `perm` is cleared and refilled; results are
/// identical to [`match_types`].
pub fn match_types_into(
    scratch: &mut MatchScratch,
    reference: &[Vec2],
    moving: &[Vec2],
    types: &[u16],
    perm: &mut Vec<usize>,
) {
    assert_eq!(reference.len(), moving.len(), "match_types: size mismatch");
    assert_eq!(reference.len(), types.len(), "match_types: types mismatch");
    let n = reference.len();
    let type_count = types.iter().map(|&t| t as usize + 1).max().unwrap_or(0);

    // Group global indices by type (identical layout in both sets). The
    // outer vec only grows, so per-type capacities persist across calls.
    while scratch.by_type.len() < type_count {
        scratch.by_type.push(Vec::new());
    }
    for group in &mut scratch.by_type {
        group.clear();
    }
    for (i, &t) in types.iter().enumerate() {
        scratch.by_type[t as usize].push(i);
    }

    perm.clear();
    perm.resize(n, usize::MAX);
    let MatchScratch {
        by_type,
        costs,
        assignment,
        hungarian,
    } = scratch;
    for members in by_type.iter().filter(|m| !m.is_empty()) {
        let k = members.len();
        if k == 1 {
            perm[members[0]] = members[0];
            continue;
        }
        // costs[(ref_local, mov_local)] = squared distance.
        costs.clear();
        costs.reserve(k * k);
        for &ri in members {
            for &mi in members {
                costs.push(reference[ri].dist_sq(moving[mi]));
            }
        }
        hungarian_with(hungarian, k, costs, assignment);
        for (ref_local, &mov_local) in assignment.iter().enumerate() {
            perm[members[ref_local]] = members[mov_local];
        }
    }
    debug_assert!(perm.iter().all(|&p| p != usize::MAX));
}

/// Applies a matching: `out[i] = moving[perm[i]]`, i.e. re-indexes the
/// moving configuration into the reference's particle ordering.
pub fn apply_matching(perm: &[usize], moving: &[Vec2]) -> Vec<Vec2> {
    perm.iter().map(|&j| moving[j]).collect()
}

/// Total squared distance achieved by a matching — diagnostic used by
/// tests and by the Fig. 7 dispersion analysis.
pub fn matching_cost(reference: &[Vec2], moving: &[Vec2], perm: &[usize]) -> f64 {
    perm.iter()
        .enumerate()
        .map(|(i, &j)| reference[i].dist_sq(moving[j]))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_when_already_matched() {
        let pts = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(2.0, 0.0),
        ];
        let perm = match_types(&pts, &pts, &[0, 0, 0]);
        assert_eq!(perm, vec![0, 1, 2]);
    }

    #[test]
    fn recovers_a_swap() {
        let reference = vec![Vec2::new(0.0, 0.0), Vec2::new(5.0, 0.0)];
        let moving = vec![Vec2::new(5.1, 0.0), Vec2::new(-0.1, 0.0)];
        let perm = match_types(&reference, &moving, &[0, 0]);
        assert_eq!(perm, vec![1, 0]);
        let fixed = apply_matching(&perm, &moving);
        assert!((fixed[0] - reference[0]).norm() < 0.2);
        assert!((fixed[1] - reference[1]).norm() < 0.2);
    }

    #[test]
    fn types_restrict_matching() {
        // Moving type-0 particle is nearest a reference type-1 particle;
        // it must still be matched within type 0.
        let reference = vec![Vec2::new(0.0, 0.0), Vec2::new(1.0, 0.0)];
        let moving = vec![Vec2::new(0.9, 0.0), Vec2::new(5.0, 0.0)];
        let types = vec![0u16, 1];
        let perm = match_types(&reference, &moving, &types);
        assert_eq!(perm, vec![0, 1], "no cross-type reassignment allowed");
    }

    #[test]
    fn beats_greedy_on_crowding() {
        // Greedy NN would map both moving points to reference point 0;
        // Hungarian must produce a bijection with lower total cost than
        // any non-bijective greedy repair.
        let reference = vec![Vec2::new(0.0, 0.0), Vec2::new(2.0, 0.0)];
        let moving = vec![Vec2::new(0.4, 0.0), Vec2::new(0.6, 0.0)];
        let perm = match_types(&reference, &moving, &[0, 0]);
        // Optimal: 0 -> 0 (0.16), 1 -> 1 ((2-0.6)^2 = 1.96) total 2.12;
        // the swap would cost 0.36 + 2.56 = 2.92.
        assert_eq!(perm, vec![0, 1]);
        assert!((matching_cost(&reference, &moving, &perm) - 2.12).abs() < 1e-12);
    }

    #[test]
    fn singleton_types_map_to_themselves() {
        let reference = vec![Vec2::new(0.0, 0.0), Vec2::new(9.0, 9.0)];
        let moving = vec![Vec2::new(1.0, 1.0), Vec2::new(8.0, 8.0)];
        let perm = match_types(&reference, &moving, &[0, 1]);
        assert_eq!(perm, vec![0, 1]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn matching_is_type_preserving_bijection(seed in 0..u64::MAX, n in 2..30usize) {
            let mut rng = sops_math::SplitMix64::new(seed);
            let types: Vec<u16> = (0..n).map(|_| (rng.next_below(3)) as u16).collect();
            let reference: Vec<Vec2> = (0..n)
                .map(|_| Vec2::new(rng.next_range(-5.0, 5.0), rng.next_range(-5.0, 5.0)))
                .collect();
            let moving: Vec<Vec2> = (0..n)
                .map(|_| Vec2::new(rng.next_range(-5.0, 5.0), rng.next_range(-5.0, 5.0)))
                .collect();
            let perm = match_types(&reference, &moving, &types);
            // Bijection.
            let mut seen = vec![false; n];
            for &j in &perm {
                prop_assert!(!seen[j]);
                seen[j] = true;
            }
            // Type preserving.
            for (i, &j) in perm.iter().enumerate() {
                prop_assert_eq!(types[i], types[j]);
            }
        }

        #[test]
        fn undoes_random_same_type_shuffles(seed in 0..u64::MAX, n in 2..20usize) {
            let mut rng = sops_math::SplitMix64::new(seed);
            let types: Vec<u16> = (0..n).map(|_| (rng.next_below(2)) as u16).collect();
            let reference: Vec<Vec2> = (0..n)
                .map(|_| Vec2::new(rng.next_range(-50.0, 50.0), rng.next_range(-50.0, 50.0)))
                .collect();
            // Shuffle within types (Fisher-Yates over each type's members).
            let mut perm_true: Vec<usize> = (0..n).collect();
            for t in 0..2u16 {
                let members: Vec<usize> = (0..n).filter(|&i| types[i] == t).collect();
                let mut shuffled = members.clone();
                for i in (1..shuffled.len()).rev() {
                    let j = rng.next_below(i as u64 + 1) as usize;
                    shuffled.swap(i, j);
                }
                for (a, b) in members.iter().zip(&shuffled) {
                    perm_true[*a] = *b;
                }
            }
            let moving: Vec<Vec2> = (0..n).map(|i| reference[perm_true[i]]).collect();
            // moving[i] = reference[perm_true[i]] => matching moving back
            // onto reference must recover reference exactly.
            let perm = match_types(&reference, &moving, &types);
            let restored = apply_matching(&perm, &moving);
            for (r, p) in reference.iter().zip(&restored) {
                prop_assert!((*r - *p).norm() < 1e-9);
            }
        }
    }
}
