//! Special functions: digamma, log-gamma and distribution quantiles.
//!
//! The Kraskov–Stögbauer–Grassberger estimator (paper Eq. 18) is a sum of
//! digamma terms `ψ(k) + (n−1)ψ(m) − ⟨Σᵢ ψ(cᵢ)⟩`. `ln Γ` is used by the
//! KDE baseline (volume of d-balls) and by tests. The normal and
//! Student-t quantiles back the seed-axis confidence intervals of
//! [`crate::stats`].

/// Digamma function `ψ(x) = d/dx ln Γ(x)` for `x > 0`.
///
/// Uses the standard recurrence `ψ(x) = ψ(x+1) − 1/x` to shift the argument
/// above 6, then an asymptotic (Bernoulli) series. Absolute error is below
/// `1e-12` over the domain exercised by the estimators (integer and
/// half-integer arguments ≥ 1).
///
/// # Panics
///
/// Panics in debug builds if `x <= 0`; the estimators never evaluate ψ at
/// non-positive arguments (counts are ≥ 1 by construction).
pub fn digamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "digamma: argument must be positive, got {x}");
    let mut x = x;
    let mut result = 0.0;
    // Recurrence: psi(x) = psi(x + 1) - 1/x, applied until x >= 10, where
    // the truncated Bernoulli series below is accurate to ~2e-14.
    while x < 10.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    // Asymptotic series: psi(x) ~ ln x - 1/(2x) - sum B_{2n}/(2n x^{2n}).
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result += x.ln()
        - 0.5 * inv
        - inv2
            * (1.0 / 12.0
                - inv2
                    * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0 - inv2 / 132.0))));
    result
}

/// Natural log of the Gamma function via the Lanczos approximation (g = 7,
/// n = 9 coefficients), valid for `x > 0`.
///
/// Relative error is below `1e-13` for the arguments used in this workspace
/// (ball-volume constants and factorials).
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "ln_gamma: argument must be positive, got {x}");
    // Lanczos coefficients for g = 7.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for small arguments.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Volume of the unit ball in `d` dimensions under the L2 norm:
/// `π^{d/2} / Γ(d/2 + 1)`.
///
/// Needed by k-NN differential-entropy estimators (Kozachenko–Leonenko term
/// of the KSG family) and by the KDE baseline.
pub fn unit_ball_volume_l2(d: usize) -> f64 {
    let d = d as f64;
    (0.5 * d * std::f64::consts::PI.ln() - ln_gamma(0.5 * d + 1.0)).exp()
}

/// Volume of the unit ball in `d` dimensions under the max (L∞) norm: `2^d`.
pub fn unit_ball_volume_max(d: usize) -> f64 {
    (d as f64).exp2()
}

/// Quantile (inverse CDF) of the standard normal distribution.
///
/// Acklam's rational approximation; relative error is below `1.2e-9`
/// over `(0, 1)` — orders of magnitude tighter than the seed-axis
/// sampling noise the confidence intervals built on it quantify.
/// Returns `±∞` at the endpoints and `NaN` outside `[0, 1]`.
pub fn normal_quantile(p: f64) -> f64 {
    if !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Quantile (inverse CDF) of Student's t distribution with `df` degrees
/// of freedom.
///
/// Exact closed forms for `df = 1` (Cauchy) and `df = 2`; a fourth-order
/// Cornish–Fisher expansion around [`normal_quantile`] otherwise
/// (Abramowitz & Stegun 26.7.5) — accurate to a few `1e-3` at `df = 3`
/// and better than `1e-4` for `df ≥ 7`, the regime of 8-seed sweep
/// summaries. Returns `NaN` for `df ≤ 0` or `p` outside `[0, 1]`.
pub fn student_t_quantile(p: f64, df: f64) -> f64 {
    if !(0.0..=1.0).contains(&p) || df <= 0.0 {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    if df == 1.0 {
        return (std::f64::consts::PI * (p - 0.5)).tan();
    }
    if df == 2.0 {
        let u = 2.0 * p - 1.0;
        return u * (2.0 / (1.0 - u * u)).sqrt();
    }
    let x = normal_quantile(p);
    let x2 = x * x;
    let g1 = x * (x2 + 1.0) / 4.0;
    let g2 = x * ((5.0 * x2 + 16.0) * x2 + 3.0) / 96.0;
    let g3 = x * (((3.0 * x2 + 19.0) * x2 + 17.0) * x2 - 15.0) / 384.0;
    let g4 = x * ((((79.0 * x2 + 776.0) * x2 + 1482.0) * x2 - 1920.0) * x2 - 945.0) / 92160.0;
    x + g1 / df + g2 / (df * df) + g3 / (df * df * df) + g4 / (df * df * df * df)
}

/// `n`-th harmonic number `H_n = Σ_{i=1}^{n} 1/i`, with `H_0 = 0`.
///
/// `ψ(n) = H_{n−1} − γ` for integer `n ≥ 1`; tests use this identity to
/// validate [`digamma`].
pub fn harmonic(n: usize) -> f64 {
    // Direct summation keeps full accuracy for the small n used in tests;
    // large n callers should prefer digamma(n + 1) + EULER_GAMMA.
    (1..=n).map(|i| 1.0 / i as f64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EULER_GAMMA;
    use proptest::prelude::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn digamma_at_one_is_minus_gamma() {
        assert!(close(digamma(1.0), -EULER_GAMMA, 1e-12));
    }

    #[test]
    fn digamma_at_half() {
        // psi(1/2) = -gamma - 2 ln 2
        let expected = -EULER_GAMMA - 2.0 * std::f64::consts::LN_2;
        assert!(close(digamma(0.5), expected, 1e-12));
    }

    #[test]
    fn digamma_matches_harmonic_numbers() {
        for n in 1..50usize {
            let expected = harmonic(n - 1) - EULER_GAMMA;
            assert!(
                close(digamma(n as f64), expected, 1e-11),
                "psi({n}) = {} vs {}",
                digamma(n as f64),
                expected
            );
        }
    }

    #[test]
    fn ln_gamma_factorials() {
        // Gamma(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..15usize {
            assert!(close(ln_gamma(n as f64), fact.ln(), 1e-12), "lgamma({n})");
            fact *= n as f64;
        }
    }

    #[test]
    fn ln_gamma_at_half_is_log_sqrt_pi() {
        assert!(close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-12));
    }

    #[test]
    fn ball_volumes_low_dims() {
        assert!(close(unit_ball_volume_l2(1), 2.0, 1e-12)); // interval [-1, 1]
        assert!(close(unit_ball_volume_l2(2), std::f64::consts::PI, 1e-12));
        assert!(close(
            unit_ball_volume_l2(3),
            4.0 / 3.0 * std::f64::consts::PI,
            1e-12
        ));
        assert_eq!(unit_ball_volume_max(3), 8.0);
    }

    #[test]
    fn normal_quantile_known_values() {
        assert!(normal_quantile(0.5).abs() < 1e-9);
        // Φ⁻¹(0.975) = 1.959963984540054, Φ⁻¹(0.995) = 2.5758293035489004
        assert!(close(normal_quantile(0.975), 1.959_963_984_540_054, 1e-8));
        assert!(close(normal_quantile(0.995), 2.575_829_303_548_9, 1e-8));
        // Symmetry and tails.
        assert!(close(normal_quantile(0.025), -normal_quantile(0.975), 1e-9));
        assert!(close(normal_quantile(1e-6), -4.753_424_308_822_899, 1e-7));
        assert_eq!(normal_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(normal_quantile(1.0), f64::INFINITY);
        assert!(normal_quantile(-0.1).is_nan());
        assert!(normal_quantile(1.1).is_nan());
    }

    #[test]
    fn student_t_quantile_matches_tables() {
        // Exact closed forms.
        assert!(close(
            student_t_quantile(0.975, 1.0),
            12.706_204_736_2,
            1e-9
        ));
        assert!(close(student_t_quantile(0.975, 2.0), 4.302_652_729_9, 1e-9));
        // Cornish–Fisher regime vs standard t tables (two-sided 95%).
        for (df, want, tol) in [
            (3.0, 3.182_446_305_3, 5e-3),
            (5.0, 2.570_581_835_6, 1e-3),
            (7.0, 2.364_624_251_6, 2e-4),
            (10.0, 2.228_138_851_99, 1e-4),
            (30.0, 2.042_272_456_3, 1e-6),
        ] {
            let got = student_t_quantile(0.975, df);
            assert!(close(got, want, tol), "t quantile df={df}: {got} vs {want}");
        }
        // Symmetry, median, degenerate inputs.
        assert!(close(
            student_t_quantile(0.05, 7.0),
            -student_t_quantile(0.95, 7.0),
            1e-12
        ));
        assert!(student_t_quantile(0.5, 9.0).abs() < 1e-9);
        assert!(student_t_quantile(0.975, 0.0).is_nan());
        assert!(student_t_quantile(2.0, 5.0).is_nan());
        assert_eq!(student_t_quantile(1.0, 5.0), f64::INFINITY);
    }

    #[test]
    fn t_quantile_approaches_normal_for_large_df() {
        let z = normal_quantile(0.975);
        assert!(close(student_t_quantile(0.975, 1e6), z, 1e-5));
    }

    proptest! {
        #[test]
        fn digamma_recurrence(x in 0.01..50.0f64) {
            // psi(x + 1) = psi(x) + 1/x
            prop_assert!(close(digamma(x + 1.0), digamma(x) + 1.0 / x, 1e-10));
        }

        #[test]
        fn digamma_monotone_on_positives(x in 0.1..50.0f64, dx in 0.01..5.0f64) {
            prop_assert!(digamma(x + dx) > digamma(x));
        }

        #[test]
        fn ln_gamma_recurrence(x in 0.1..30.0f64) {
            // Gamma(x + 1) = x Gamma(x)
            prop_assert!(close(ln_gamma(x + 1.0), ln_gamma(x) + x.ln(), 1e-10));
        }

        #[test]
        fn t_quantile_monotone_and_heavier_than_normal(p in 0.51..0.999f64, df in 3.0..100.0f64) {
            // Student t has heavier tails than the normal: its upper
            // quantiles sit above Φ⁻¹, and move toward it as df grows.
            let t = student_t_quantile(p, df);
            let z = normal_quantile(p);
            prop_assert!(t >= z - 1e-9, "t({p},{df}) = {t} below normal {z}");
            prop_assert!(student_t_quantile(p + 0.0005, df) >= t - 1e-12);
        }

        #[test]
        fn ln_gamma_convex_combination(x in 1.0..20.0f64, y in 1.0..20.0f64) {
            // log-convexity of Gamma (Bohr–Mollerup): lgamma midpoint below average.
            let mid = ln_gamma(0.5 * (x + y));
            prop_assert!(mid <= 0.5 * (ln_gamma(x) + ln_gamma(y)) + 1e-12);
        }
    }
}
