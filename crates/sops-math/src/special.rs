//! Special functions: digamma and log-gamma.
//!
//! The Kraskov–Stögbauer–Grassberger estimator (paper Eq. 18) is a sum of
//! digamma terms `ψ(k) + (n−1)ψ(m) − ⟨Σᵢ ψ(cᵢ)⟩`. `ln Γ` is used by the
//! KDE baseline (volume of d-balls) and by tests.

/// Digamma function `ψ(x) = d/dx ln Γ(x)` for `x > 0`.
///
/// Uses the standard recurrence `ψ(x) = ψ(x+1) − 1/x` to shift the argument
/// above 6, then an asymptotic (Bernoulli) series. Absolute error is below
/// `1e-12` over the domain exercised by the estimators (integer and
/// half-integer arguments ≥ 1).
///
/// # Panics
///
/// Panics in debug builds if `x <= 0`; the estimators never evaluate ψ at
/// non-positive arguments (counts are ≥ 1 by construction).
pub fn digamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "digamma: argument must be positive, got {x}");
    let mut x = x;
    let mut result = 0.0;
    // Recurrence: psi(x) = psi(x + 1) - 1/x, applied until x >= 10, where
    // the truncated Bernoulli series below is accurate to ~2e-14.
    while x < 10.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    // Asymptotic series: psi(x) ~ ln x - 1/(2x) - sum B_{2n}/(2n x^{2n}).
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result += x.ln()
        - 0.5 * inv
        - inv2
            * (1.0 / 12.0
                - inv2
                    * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0 - inv2 / 132.0))));
    result
}

/// Natural log of the Gamma function via the Lanczos approximation (g = 7,
/// n = 9 coefficients), valid for `x > 0`.
///
/// Relative error is below `1e-13` for the arguments used in this workspace
/// (ball-volume constants and factorials).
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "ln_gamma: argument must be positive, got {x}");
    // Lanczos coefficients for g = 7.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for small arguments.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Volume of the unit ball in `d` dimensions under the L2 norm:
/// `π^{d/2} / Γ(d/2 + 1)`.
///
/// Needed by k-NN differential-entropy estimators (Kozachenko–Leonenko term
/// of the KSG family) and by the KDE baseline.
pub fn unit_ball_volume_l2(d: usize) -> f64 {
    let d = d as f64;
    (0.5 * d * std::f64::consts::PI.ln() - ln_gamma(0.5 * d + 1.0)).exp()
}

/// Volume of the unit ball in `d` dimensions under the max (L∞) norm: `2^d`.
pub fn unit_ball_volume_max(d: usize) -> f64 {
    (d as f64).exp2()
}

/// `n`-th harmonic number `H_n = Σ_{i=1}^{n} 1/i`, with `H_0 = 0`.
///
/// `ψ(n) = H_{n−1} − γ` for integer `n ≥ 1`; tests use this identity to
/// validate [`digamma`].
pub fn harmonic(n: usize) -> f64 {
    // Direct summation keeps full accuracy for the small n used in tests;
    // large n callers should prefer digamma(n + 1) + EULER_GAMMA.
    (1..=n).map(|i| 1.0 / i as f64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EULER_GAMMA;
    use proptest::prelude::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn digamma_at_one_is_minus_gamma() {
        assert!(close(digamma(1.0), -EULER_GAMMA, 1e-12));
    }

    #[test]
    fn digamma_at_half() {
        // psi(1/2) = -gamma - 2 ln 2
        let expected = -EULER_GAMMA - 2.0 * std::f64::consts::LN_2;
        assert!(close(digamma(0.5), expected, 1e-12));
    }

    #[test]
    fn digamma_matches_harmonic_numbers() {
        for n in 1..50usize {
            let expected = harmonic(n - 1) - EULER_GAMMA;
            assert!(
                close(digamma(n as f64), expected, 1e-11),
                "psi({n}) = {} vs {}",
                digamma(n as f64),
                expected
            );
        }
    }

    #[test]
    fn ln_gamma_factorials() {
        // Gamma(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..15usize {
            assert!(close(ln_gamma(n as f64), fact.ln(), 1e-12), "lgamma({n})");
            fact *= n as f64;
        }
    }

    #[test]
    fn ln_gamma_at_half_is_log_sqrt_pi() {
        assert!(close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-12));
    }

    #[test]
    fn ball_volumes_low_dims() {
        assert!(close(unit_ball_volume_l2(1), 2.0, 1e-12)); // interval [-1, 1]
        assert!(close(unit_ball_volume_l2(2), std::f64::consts::PI, 1e-12));
        assert!(close(
            unit_ball_volume_l2(3),
            4.0 / 3.0 * std::f64::consts::PI,
            1e-12
        ));
        assert_eq!(unit_ball_volume_max(3), 8.0);
    }

    proptest! {
        #[test]
        fn digamma_recurrence(x in 0.01..50.0f64) {
            // psi(x + 1) = psi(x) + 1/x
            prop_assert!(close(digamma(x + 1.0), digamma(x) + 1.0 / x, 1e-10));
        }

        #[test]
        fn digamma_monotone_on_positives(x in 0.1..50.0f64, dx in 0.01..5.0f64) {
            prop_assert!(digamma(x + dx) > digamma(x));
        }

        #[test]
        fn ln_gamma_recurrence(x in 0.1..30.0f64) {
            // Gamma(x + 1) = x Gamma(x)
            prop_assert!(close(ln_gamma(x + 1.0), ln_gamma(x) + x.ln(), 1e-10));
        }

        #[test]
        fn ln_gamma_convex_combination(x in 1.0..20.0f64, y in 1.0..20.0f64) {
            // log-convexity of Gamma (Bohr–Mollerup): lgamma midpoint below average.
            let mid = ln_gamma(0.5 * (x + y));
            prop_assert!(mid <= 0.5 * (ln_gamma(x) + ln_gamma(y)) + 1e-12);
        }
    }
}
