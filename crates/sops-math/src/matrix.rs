//! Small dense matrices with the handful of factorizations the workspace
//! needs.
//!
//! The estimators and their tests need: covariance matrices of sample
//! ensembles, Cholesky factors (to draw correlated Gaussians and to compute
//! `ln det Σ` for analytic multi-information), and LU determinants as an
//! independent cross-check. Dimensions are tiny (≤ a few hundred), so a
//! straightforward row-major implementation is appropriate — no BLAS.

/// Row-major dense `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major slice.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols, "Matrix::from_rows: size mismatch");
        Matrix {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of the row-major backing storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul: inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec: dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Cholesky factorization `Σ = L Lᵀ` for a symmetric positive-definite
    /// matrix; returns the lower-triangular factor, or `None` if the matrix
    /// is not (numerically) positive definite.
    pub fn cholesky(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "cholesky: matrix must be square");
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return None;
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Some(l)
    }

    /// Natural log of the determinant of a symmetric positive-definite
    /// matrix, via Cholesky (`ln det Σ = 2 Σᵢ ln Lᵢᵢ`). `None` if not SPD.
    pub fn ln_det_spd(&self) -> Option<f64> {
        let l = self.cholesky()?;
        let mut acc = 0.0;
        for i in 0..self.rows {
            acc += l[(i, i)].ln();
        }
        Some(2.0 * acc)
    }

    /// Determinant via LU factorization with partial pivoting.
    ///
    /// Works for any square matrix (an independent cross-check for
    /// [`Matrix::ln_det_spd`] in tests).
    pub fn det_lu(&self) -> f64 {
        assert_eq!(self.rows, self.cols, "det_lu: matrix must be square");
        let n = self.rows;
        let mut a = self.data.clone();
        let mut det = 1.0;
        for col in 0..n {
            // Partial pivot.
            let mut pivot = col;
            let mut best = a[col * n + col].abs();
            for r in (col + 1)..n {
                let v = a[r * n + col].abs();
                if v > best {
                    best = v;
                    pivot = r;
                }
            }
            if best == 0.0 {
                return 0.0;
            }
            if pivot != col {
                for c in 0..n {
                    a.swap(col * n + c, pivot * n + c);
                }
                det = -det;
            }
            let p = a[col * n + col];
            det *= p;
            for r in (col + 1)..n {
                let f = a[r * n + col] / p;
                if f == 0.0 {
                    continue;
                }
                for c in col..n {
                    a[r * n + c] -= f * a[col * n + c];
                }
            }
        }
        det
    }

    /// Sample covariance matrix of `m` observations of a `d`-dimensional
    /// variable given as `m` rows of length `d` (unbiased, divides by
    /// `m − 1`).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two observations are given or rows are ragged.
    pub fn covariance_of(samples: &[&[f64]]) -> Matrix {
        let m = samples.len();
        assert!(m >= 2, "covariance_of: need at least two samples");
        let d = samples[0].len();
        let mut mean = vec![0.0; d];
        for s in samples {
            assert_eq!(s.len(), d, "covariance_of: ragged samples");
            for (acc, &v) in mean.iter_mut().zip(*s) {
                *acc += v;
            }
        }
        for v in &mut mean {
            *v /= m as f64;
        }
        let mut cov = Matrix::zeros(d, d);
        for s in samples {
            for i in 0..d {
                let di = s[i] - mean[i];
                for j in i..d {
                    cov[(i, j)] += di * (s[j] - mean[j]);
                }
            }
        }
        let denom = (m - 1) as f64;
        for i in 0..d {
            for j in i..d {
                cov[(i, j)] /= denom;
                cov[(j, i)] = cov[(i, j)];
            }
        }
        cov
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn identity_and_indexing() {
        let i3 = Matrix::identity(3);
        assert_eq!(i3[(0, 0)], 1.0);
        assert_eq!(i3[(0, 1)], 0.0);
        assert_eq!(i3.rows(), 3);
        assert_eq!(i3.cols(), 3);
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_rows(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matvec_known() {
        let a = Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn cholesky_of_known_spd() {
        // [[4, 2], [2, 3]] = L L^T with L = [[2, 0], [1, sqrt(2)]]
        let a = Matrix::from_rows(2, 2, &[4.0, 2.0, 2.0, 3.0]);
        let l = a.cholesky().unwrap();
        assert!(close(l[(0, 0)], 2.0, 1e-12));
        assert!(close(l[(1, 0)], 1.0, 1e-12));
        assert!(close(l[(1, 1)], 2.0f64.sqrt(), 1e-12));
        // det = 4*3 - 2*2 = 8
        assert!(close(a.ln_det_spd().unwrap(), 8.0f64.ln(), 1e-12));
        assert!(close(a.det_lu(), 8.0, 1e-12));
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(2, 2, &[1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(a.cholesky().is_none());
        assert!(close(a.det_lu(), -3.0, 1e-12));
    }

    #[test]
    fn singular_determinant_is_zero() {
        let a = Matrix::from_rows(2, 2, &[1.0, 2.0, 2.0, 4.0]);
        assert_eq!(a.det_lu(), 0.0);
    }

    #[test]
    fn covariance_of_simple_cloud() {
        // Two perfectly correlated coordinates.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let cov = Matrix::covariance_of(&refs);
        assert!(close(cov[(0, 1)], 2.0 * cov[(0, 0)], 1e-12));
        assert!(close(cov[(1, 1)], 4.0 * cov[(0, 0)], 1e-12));
        // Perfectly dependent => singular covariance.
        assert!(cov.det_lu().abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn lu_det_matches_cholesky_for_spd(v in proptest::collection::vec(-2.0..2.0f64, 9)) {
            // Build SPD as B^T B + I.
            let b = Matrix::from_rows(3, 3, &v);
            let mut spd = b.transpose().matmul(&b);
            for i in 0..3 { spd[(i, i)] += 1.0; }
            let lu = spd.det_lu();
            let ch = spd.ln_det_spd().expect("SPD by construction").exp();
            prop_assert!(close(lu, ch, 1e-8));
        }

        #[test]
        fn matmul_identity_is_noop(v in proptest::collection::vec(-10.0..10.0f64, 12)) {
            let a = Matrix::from_rows(3, 4, &v);
            let out = Matrix::identity(3).matmul(&a);
            for (x, y) in out.as_slice().iter().zip(a.as_slice()) {
                prop_assert!(close(*x, *y, 1e-12));
            }
        }

        #[test]
        fn covariance_is_symmetric_psd_diag(rows in proptest::collection::vec(proptest::collection::vec(-5.0..5.0f64, 3), 4..30)) {
            let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
            let cov = Matrix::covariance_of(&refs);
            for i in 0..3 {
                prop_assert!(cov[(i, i)] >= -1e-12);
                for j in 0..3 {
                    prop_assert!(close(cov[(i, j)], cov[(j, i)], 1e-12));
                }
            }
        }
    }
}
