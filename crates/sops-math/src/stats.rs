//! Streaming and slice statistics.
//!
//! Used throughout the workspace: equilibrium detection averages force
//! norms, the experiment harness averages multi-information curves over
//! random type-matrix draws (paper Figs. 8–10), tests compare empirical
//! moments against analytic values, and the sweep layer's seed-axis
//! summaries aggregate per-seed ΔI values into standard errors,
//! confidence intervals ([`t_confidence_interval`],
//! [`bootstrap_mean_interval`]) and significance verdicts
//! ([`permutation_test_mean_diff`]).
//!
//! Every resampling routine here draws from a private [`SplitMix64`]
//! stream seeded by the caller and accumulates in a fixed index order, so
//! results are bit-identical across runs, platforms and worker counts —
//! the same determinism contract the simulation and estimation engines
//! honour.

use crate::rng::SplitMix64;
use crate::special::student_t_quantile;

/// Welford online mean/variance accumulator.
///
/// Numerically stable single-pass computation of mean and (sample)
/// variance; merging two accumulators is supported so that per-thread
/// partial statistics can be combined.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; `NaN` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance; `NaN` with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            f64::NAN
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (divides by `n`); `NaN` when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `−inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = RunningStats::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

/// Arithmetic mean of a slice; `NaN` when empty.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance of a slice; `NaN` with fewer than two elements.
pub fn variance(xs: &[f64]) -> f64 {
    xs.iter().copied().collect::<RunningStats>().variance()
}

/// Unbiased sample covariance between two equally long slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn covariance(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "covariance: length mismatch");
    let n = xs.len();
    if n < 2 {
        return f64::NAN;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut acc = 0.0;
    for i in 0..n {
        acc += (xs[i] - mx) * (ys[i] - my);
    }
    acc / (n - 1) as f64
}

/// Pearson correlation coefficient; `NaN` if either variance vanishes.
pub fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    let c = covariance(xs, ys);
    let sx = variance(xs).sqrt();
    let sy = variance(ys).sqrt();
    c / (sx * sy)
}

/// Empirical `q`-quantile (linear interpolation between order statistics).
///
/// `q` is clamped to `[0, 1]`. Returns `NaN` for an empty slice. The input
/// need not be sorted.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("quantile: NaN in data"));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Coefficient of variation `σ/μ` of a slice.
///
/// Used as the grid-regularity metric for Fig. 3: a perfectly regular
/// particle grid has near-zero CV of nearest-neighbour distances.
pub fn coefficient_of_variation(xs: &[f64]) -> f64 {
    variance(xs).sqrt() / mean(xs)
}

/// Ordinary least squares slope of `y` against `x`.
///
/// Used by tests and experiment summaries to assert that a
/// multi-information time series is increasing (self-organization) or flat.
///
/// Degenerate x-axes — fewer than two points, or zero spread — have no
/// defined slope; this returns `0.0` for them (matching
/// `MiSeries::increase` on an empty series: "no evidence of change"),
/// rather than the `NaN`/`±∞` the raw covariance ratio would produce.
pub fn ols_slope(xs: &[f64], ys: &[f64]) -> f64 {
    let var = variance(xs);
    if !var.is_finite() || var == 0.0 {
        return 0.0;
    }
    covariance(xs, ys) / var
}

/// Standard error of the mean `σ/√n`; `NaN` with fewer than two
/// observations (the sample standard deviation is undefined).
pub fn std_error(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    (variance(xs) / xs.len() as f64).sqrt()
}

/// A closed confidence interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Interval {
    /// Midpoint of the interval.
    pub fn center(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Half the interval width — the `± ci` of a `mean ± ci` report.
    pub fn half_width(&self) -> f64 {
        0.5 * (self.hi - self.lo)
    }

    /// Whether `x` lies inside the closed interval.
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }
}

/// Student-t confidence interval for the mean at the given two-sided
/// `confidence` level (e.g. `0.95`).
///
/// Degenerate inputs: an empty slice yields a `NaN` interval; a single
/// observation yields the zero-width interval at that value (no spread
/// information — downstream tolerance users should apply their own
/// floor).
pub fn t_confidence_interval(xs: &[f64], confidence: f64) -> Interval {
    assert!(
        (0.0..1.0).contains(&confidence),
        "t_confidence_interval: confidence must be in [0, 1), got {confidence}"
    );
    match xs.len() {
        0 => Interval {
            lo: f64::NAN,
            hi: f64::NAN,
        },
        1 => Interval {
            lo: xs[0],
            hi: xs[0],
        },
        n => {
            let m = mean(xs);
            let half = student_t_quantile(0.5 + 0.5 * confidence, (n - 1) as f64) * std_error(xs);
            Interval {
                lo: m - half,
                hi: m + half,
            }
        }
    }
}

/// Percentile-bootstrap confidence interval for the mean: `resamples`
/// with-replacement redraws of `xs` under a deterministic
/// [`SplitMix64`] stream seeded by `seed`, interval = the
/// `(1±confidence)/2` quantiles of the resampled means.
///
/// Fully sequential and index-ordered, so the result is bit-identical
/// for any caller thread count. An empty slice — or one containing a
/// non-finite observation, whose resampled means are meaningless —
/// yields a `NaN` interval; a single finite observation yields the
/// zero-width interval at that value.
pub fn bootstrap_mean_interval(
    xs: &[f64],
    confidence: f64,
    resamples: usize,
    seed: u64,
) -> Interval {
    assert!(
        (0.0..1.0).contains(&confidence),
        "bootstrap_mean_interval: confidence must be in [0, 1), got {confidence}"
    );
    assert!(resamples > 0, "bootstrap_mean_interval: zero resamples");
    if xs.is_empty() || xs.iter().any(|x| !x.is_finite()) {
        return Interval {
            lo: f64::NAN,
            hi: f64::NAN,
        };
    }
    if xs.len() == 1 {
        return Interval {
            lo: xs[0],
            hi: xs[0],
        };
    }
    let mut rng = SplitMix64::new(seed);
    let n = xs.len();
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut acc = 0.0;
        for _ in 0..n {
            acc += xs[rng.next_below(n as u64) as usize];
        }
        means.push(acc / n as f64);
    }
    let tail = 0.5 * (1.0 - confidence);
    Interval {
        lo: quantile(&means, tail),
        hi: quantile(&means, 1.0 - tail),
    }
}

/// Two-sample permutation test for a difference in means.
///
/// Statistic: `|mean(xs) − mean(ys)|`. The pooled sample is re-split
/// `resamples` times by a deterministic seeded Fisher–Yates shuffle; the
/// returned two-sided p-value uses the add-one correction
/// `(extreme + 1) / (resamples + 1)`, so it is always in
/// `(0, 1]` and exact under H₀. `NaN` if either sample is empty.
///
/// Like the bootstrap, the shuffle stream depends only on `seed` and the
/// input order — never on thread scheduling.
pub fn permutation_test_mean_diff(xs: &[f64], ys: &[f64], resamples: usize, seed: u64) -> f64 {
    assert!(resamples > 0, "permutation_test_mean_diff: zero resamples");
    if xs.is_empty() || ys.is_empty() {
        return f64::NAN;
    }
    let observed = (mean(xs) - mean(ys)).abs();
    let mut pool: Vec<f64> = xs.iter().chain(ys).copied().collect();
    let n = xs.len();
    let mut rng = SplitMix64::new(seed);
    let mut extreme = 0usize;
    for _ in 0..resamples {
        for i in (1..pool.len()).rev() {
            let j = rng.next_below((i + 1) as u64) as usize;
            pool.swap(i, j);
        }
        let d = (mean(&pool[..n]) - mean(&pool[n..])).abs();
        if d >= observed {
            extreme += 1;
        }
    }
    (extreme + 1) as f64 / (resamples + 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn running_stats_small_case() {
        let s: RunningStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert!(close(s.mean(), 5.0, 1e-12));
        assert!(close(s.population_variance(), 4.0, 1e-12));
        assert!(close(s.variance(), 32.0 / 7.0, 1e-12));
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_nan() {
        let s = RunningStats::new();
        assert!(s.mean().is_nan());
        assert!(s.variance().is_nan());
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for (i, &x) in xs.iter().enumerate() {
            if i % 2 == 0 {
                a.push(x)
            } else {
                b.push(x)
            }
        }
        a.merge(&b);
        let all: RunningStats = xs.iter().copied().collect();
        assert_eq!(a.count(), all.count());
        assert!(close(a.mean(), all.mean(), 1e-12));
        assert!(close(a.variance(), all.variance(), 1e-12));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: RunningStats = [1.0, 2.0, 3.0].into_iter().collect();
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e.count(), 3);
        assert!(close(e.mean(), 2.0, 1e-12));
    }

    #[test]
    fn covariance_and_correlation_of_linear_data() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        assert!(close(correlation(&xs, &ys), 1.0, 1e-12));
        assert!(close(ols_slope(&xs, &ys), 3.0, 1e-12));
        let neg: Vec<f64> = xs.iter().map(|x| -2.0 * x).collect();
        assert!(close(correlation(&xs, &neg), -1.0, 1e-12));
    }

    #[test]
    fn quantiles_of_known_slice() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!(close(quantile(&xs, 0.5), 2.5, 1e-12));
        assert!(quantile(&[], 0.5).is_nan());
    }

    #[test]
    fn cv_of_constant_is_zero() {
        let xs = [3.0; 10];
        assert!(coefficient_of_variation(&xs).abs() < 1e-12);
    }

    #[test]
    fn ols_slope_degenerate_inputs_are_zero() {
        // Fewer than two points: no slope evidence → 0.0, not NaN.
        assert_eq!(ols_slope(&[1.0], &[5.0]), 0.0);
        assert_eq!(ols_slope(&[], &[]), 0.0);
        // Zero x-spread: vertical "line" → 0.0, not ±∞/NaN.
        assert_eq!(ols_slope(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]), 0.0);
        // Regular inputs unchanged.
        assert!(close(
            ols_slope(&[0.0, 1.0, 2.0], &[0.0, 2.0, 4.0]),
            2.0,
            1e-12
        ));
    }

    #[test]
    fn std_error_shrinks_with_n() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let se = std_error(&xs);
        assert!(close(se, (32.0 / 7.0f64 / 8.0).sqrt(), 1e-12));
        assert!(std_error(&[1.0]).is_nan());
        assert!(std_error(&[]).is_nan());
    }

    #[test]
    fn t_interval_covers_mean_and_degenerates() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let ci = t_confidence_interval(&xs, 0.95);
        assert!(ci.contains(mean(&xs)));
        assert!(close(ci.center(), 5.0, 1e-12));
        // t(0.975, 7) ≈ 2.3646: half-width = t · se.
        assert!(close(
            ci.half_width(),
            2.364_624_251_6 * std_error(&xs),
            1e-3
        ));
        // Wider confidence → wider interval.
        let ci99 = t_confidence_interval(&xs, 0.99);
        assert!(ci99.half_width() > ci.half_width());
        // Degenerates.
        let one = t_confidence_interval(&[3.0], 0.95);
        assert_eq!((one.lo, one.hi), (3.0, 3.0));
        assert!(t_confidence_interval(&[], 0.95).lo.is_nan());
    }

    #[test]
    fn bootstrap_interval_is_deterministic_and_sane() {
        let xs: Vec<f64> = (0..24)
            .map(|i| (i as f64 * 0.7).sin() * 3.0 + 5.0)
            .collect();
        let a = bootstrap_mean_interval(&xs, 0.95, 500, 42);
        let b = bootstrap_mean_interval(&xs, 0.95, 500, 42);
        assert_eq!(
            (a.lo.to_bits(), a.hi.to_bits()),
            (b.lo.to_bits(), b.hi.to_bits())
        );
        // Interval brackets the sample mean and sits inside the data range.
        assert!(a.contains(mean(&xs)));
        assert!(a.lo >= xs.iter().cloned().fold(f64::INFINITY, f64::min));
        assert!(a.hi <= xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
        // Another seed resamples differently.
        let c = bootstrap_mean_interval(&xs, 0.95, 500, 43);
        assert!(a.lo != c.lo || a.hi != c.hi);
        // Degenerates.
        let one = bootstrap_mean_interval(&[2.5], 0.95, 100, 1);
        assert_eq!((one.lo, one.hi), (2.5, 2.5));
        assert!(bootstrap_mean_interval(&[], 0.95, 100, 1).lo.is_nan());
    }

    #[test]
    fn permutation_test_separates_and_calibrates() {
        // Cleanly separated samples: p pinned at the add-one floor.
        let lo: Vec<f64> = (0..8).map(|i| i as f64 * 0.01).collect();
        let hi: Vec<f64> = (0..8).map(|i| 10.0 + i as f64 * 0.01).collect();
        let p = permutation_test_mean_diff(&lo, &hi, 999, 7);
        assert!(p <= 0.005, "separated samples must be significant: p = {p}");
        // Identical samples: every permutation is at least as extreme.
        let p_same = permutation_test_mean_diff(&lo, &lo, 999, 7);
        assert!(close(p_same, 1.0, 1e-12));
        // Deterministic under a fixed seed.
        let p2 = permutation_test_mean_diff(&lo, &hi, 999, 7);
        assert_eq!(p.to_bits(), p2.to_bits());
        // Empty samples are undefined.
        assert!(permutation_test_mean_diff(&[], &hi, 99, 1).is_nan());
    }

    proptest! {
        #[test]
        fn pushing_shifts_mean_linearly(xs in proptest::collection::vec(-100.0..100.0f64, 2..50), shift in -10.0..10.0f64) {
            let base: RunningStats = xs.iter().copied().collect();
            let shifted: RunningStats = xs.iter().map(|x| x + shift).collect();
            prop_assert!(close(shifted.mean(), base.mean() + shift, 1e-9));
            prop_assert!(close(shifted.variance(), base.variance(), 1e-7));
        }

        #[test]
        fn variance_is_nonnegative(xs in proptest::collection::vec(-1e3..1e3f64, 2..100)) {
            prop_assert!(variance(&xs) >= -1e-9);
        }

        #[test]
        fn correlation_bounded(xs in proptest::collection::vec(-1e3..1e3f64, 3..50),
                               ys in proptest::collection::vec(-1e3..1e3f64, 3..50)) {
            let n = xs.len().min(ys.len());
            let r = correlation(&xs[..n], &ys[..n]);
            if r.is_finite() {
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            }
        }

        #[test]
        fn t_interval_contains_sample_mean(xs in proptest::collection::vec(-1e3..1e3f64, 2..60), conf in 0.5..0.999f64) {
            let ci = t_confidence_interval(&xs, conf);
            prop_assert!(ci.contains(mean(&xs)));
            prop_assert!(ci.half_width() >= 0.0);
        }

        #[test]
        fn permutation_p_value_in_unit_interval(xs in proptest::collection::vec(-10.0..10.0f64, 2..12),
                                                ys in proptest::collection::vec(-10.0..10.0f64, 2..12),
                                                seed in 0..1000u64) {
            let p = permutation_test_mean_diff(&xs, &ys, 99, seed);
            prop_assert!(p > 0.0 && p <= 1.0, "p = {p}");
        }

        #[test]
        fn quantile_within_range(xs in proptest::collection::vec(-1e3..1e3f64, 1..100), q in 0.0..1.0f64) {
            let v = quantile(&xs, q);
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }
}
