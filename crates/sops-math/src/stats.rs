//! Streaming and slice statistics.
//!
//! Used throughout the workspace: equilibrium detection averages force
//! norms, the experiment harness averages multi-information curves over
//! random type-matrix draws (paper Figs. 8–10), and tests compare empirical
//! moments against analytic values.

/// Welford online mean/variance accumulator.
///
/// Numerically stable single-pass computation of mean and (sample)
/// variance; merging two accumulators is supported so that per-thread
/// partial statistics can be combined.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; `NaN` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance; `NaN` with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            f64::NAN
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (divides by `n`); `NaN` when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `−inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = RunningStats::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

/// Arithmetic mean of a slice; `NaN` when empty.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance of a slice; `NaN` with fewer than two elements.
pub fn variance(xs: &[f64]) -> f64 {
    xs.iter().copied().collect::<RunningStats>().variance()
}

/// Unbiased sample covariance between two equally long slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn covariance(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "covariance: length mismatch");
    let n = xs.len();
    if n < 2 {
        return f64::NAN;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut acc = 0.0;
    for i in 0..n {
        acc += (xs[i] - mx) * (ys[i] - my);
    }
    acc / (n - 1) as f64
}

/// Pearson correlation coefficient; `NaN` if either variance vanishes.
pub fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    let c = covariance(xs, ys);
    let sx = variance(xs).sqrt();
    let sy = variance(ys).sqrt();
    c / (sx * sy)
}

/// Empirical `q`-quantile (linear interpolation between order statistics).
///
/// `q` is clamped to `[0, 1]`. Returns `NaN` for an empty slice. The input
/// need not be sorted.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("quantile: NaN in data"));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Coefficient of variation `σ/μ` of a slice.
///
/// Used as the grid-regularity metric for Fig. 3: a perfectly regular
/// particle grid has near-zero CV of nearest-neighbour distances.
pub fn coefficient_of_variation(xs: &[f64]) -> f64 {
    variance(xs).sqrt() / mean(xs)
}

/// Ordinary least squares slope of `y` against `x`.
///
/// Used by tests and experiment summaries to assert that a
/// multi-information time series is increasing (self-organization) or flat.
pub fn ols_slope(xs: &[f64], ys: &[f64]) -> f64 {
    covariance(xs, ys) / variance(xs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn running_stats_small_case() {
        let s: RunningStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert!(close(s.mean(), 5.0, 1e-12));
        assert!(close(s.population_variance(), 4.0, 1e-12));
        assert!(close(s.variance(), 32.0 / 7.0, 1e-12));
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_nan() {
        let s = RunningStats::new();
        assert!(s.mean().is_nan());
        assert!(s.variance().is_nan());
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for (i, &x) in xs.iter().enumerate() {
            if i % 2 == 0 {
                a.push(x)
            } else {
                b.push(x)
            }
        }
        a.merge(&b);
        let all: RunningStats = xs.iter().copied().collect();
        assert_eq!(a.count(), all.count());
        assert!(close(a.mean(), all.mean(), 1e-12));
        assert!(close(a.variance(), all.variance(), 1e-12));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: RunningStats = [1.0, 2.0, 3.0].into_iter().collect();
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e.count(), 3);
        assert!(close(e.mean(), 2.0, 1e-12));
    }

    #[test]
    fn covariance_and_correlation_of_linear_data() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        assert!(close(correlation(&xs, &ys), 1.0, 1e-12));
        assert!(close(ols_slope(&xs, &ys), 3.0, 1e-12));
        let neg: Vec<f64> = xs.iter().map(|x| -2.0 * x).collect();
        assert!(close(correlation(&xs, &neg), -1.0, 1e-12));
    }

    #[test]
    fn quantiles_of_known_slice() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!(close(quantile(&xs, 0.5), 2.5, 1e-12));
        assert!(quantile(&[], 0.5).is_nan());
    }

    #[test]
    fn cv_of_constant_is_zero() {
        let xs = [3.0; 10];
        assert!(coefficient_of_variation(&xs).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn pushing_shifts_mean_linearly(xs in proptest::collection::vec(-100.0..100.0f64, 2..50), shift in -10.0..10.0f64) {
            let base: RunningStats = xs.iter().copied().collect();
            let shifted: RunningStats = xs.iter().map(|x| x + shift).collect();
            prop_assert!(close(shifted.mean(), base.mean() + shift, 1e-9));
            prop_assert!(close(shifted.variance(), base.variance(), 1e-7));
        }

        #[test]
        fn variance_is_nonnegative(xs in proptest::collection::vec(-1e3..1e3f64, 2..100)) {
            prop_assert!(variance(&xs) >= -1e-9);
        }

        #[test]
        fn correlation_bounded(xs in proptest::collection::vec(-1e3..1e3f64, 3..50),
                               ys in proptest::collection::vec(-1e3..1e3f64, 3..50)) {
            let n = xs.len().min(ys.len());
            let r = correlation(&xs[..n], &ys[..n]);
            if r.is_finite() {
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            }
        }

        #[test]
        fn quantile_within_range(xs in proptest::collection::vec(-1e3..1e3f64, 1..100), q in 0.0..1.0f64) {
            let v = quantile(&xs, q);
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }
}
