//! Plain 2-D double-precision vectors.
//!
//! The particle model of the paper lives in the Euclidean plane (§5.1), so a
//! concrete 2-D type is both faster and clearer than a generic
//! `const`-dimension vector. Higher-dimensional points (joint observer
//! spaces in the estimators) are handled as flat `&[f64]` slices instead.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 2-D vector / point with `f64` components.
///
/// `repr(C)` pins the `x, y` field order in memory: SIMD kernels
/// downstream (e.g. the cell-grid's lane deinterleave) reinterpret
/// `&[Vec2]` as an interleaved `x y x y …` `f64` stream.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Vec2 {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Creates a vector from polar coordinates `(radius, angle)`.
    ///
    /// The angle is measured counter-clockwise from the positive x-axis, in
    /// radians.
    #[inline]
    pub fn from_polar(radius: f64, angle: f64) -> Self {
        Vec2::new(radius * angle.cos(), radius * angle.sin())
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (the z-component of the 3-D cross product).
    ///
    /// Positive when `other` is counter-clockwise from `self`.
    #[inline]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(self, other: Vec2) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn dist_sq(self, other: Vec2) -> f64 {
        (self - other).norm_sq()
    }

    /// Returns the vector scaled to unit length, or `None` for (near-)zero
    /// vectors where the direction is undefined.
    #[inline]
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n > f64::EPSILON {
            Some(self / n)
        } else {
            None
        }
    }

    /// The vector rotated counter-clockwise by `angle` radians.
    #[inline]
    pub fn rotated(self, angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }

    /// The vector rotated by 90° counter-clockwise.
    #[inline]
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// Angle of the vector, in radians in `(-π, π]`.
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Component-wise linear interpolation: `self + t * (other - self)`.
    #[inline]
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        self + (other - self) * t
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// `true` iff both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Clamps the norm of the vector to at most `max_norm`.
    ///
    /// Used by the integrator to bound per-step displacements near the
    /// `1/x` singularity of the F¹ force law (see DESIGN.md, pinned
    /// interpretation #2).
    #[inline]
    pub fn clamp_norm(self, max_norm: f64) -> Vec2 {
        debug_assert!(max_norm >= 0.0);
        let n = self.norm();
        if n > max_norm && n > 0.0 {
            self * (max_norm / n)
        } else {
            self
        }
    }

    /// Centroid (arithmetic mean) of a non-empty set of points.
    ///
    /// Returns `Vec2::ZERO` for an empty slice.
    pub fn centroid(points: &[Vec2]) -> Vec2 {
        if points.is_empty() {
            return Vec2::ZERO;
        }
        let sum: Vec2 = points.iter().copied().sum();
        sum / points.len() as f64
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: Vec2) -> Vec2 {
        rhs * self
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl MulAssign<f64> for Vec2 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        self.x *= rhs;
        self.y *= rhs;
    }
}

impl DivAssign<f64> for Vec2 {
    #[inline]
    fn div_assign(&mut self, rhs: f64) {
        self.x /= rhs;
        self.y /= rhs;
    }
}

impl Sum for Vec2 {
    fn sum<I: Iterator<Item = Vec2>>(iter: I) -> Vec2 {
        iter.fold(Vec2::ZERO, Add::add)
    }
}

impl From<(f64, f64)> for Vec2 {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Vec2::new(x, y)
    }
}

impl From<Vec2> for (f64, f64) {
    #[inline]
    fn from(v: Vec2) -> Self {
        (v.x, v.y)
    }
}

impl From<Vec2> for [f64; 2] {
    #[inline]
    fn from(v: Vec2) -> Self {
        [v.x, v.y]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-12 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn basic_algebra() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(-3.0, 0.5);
        assert_eq!(a + b, Vec2::new(-2.0, 2.5));
        assert_eq!(a - b, Vec2::new(4.0, 1.5));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec2::new(0.5, 1.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
        assert_eq!(a.dot(a), 1.0);
    }

    #[test]
    fn norms_and_distance() {
        let v = Vec2::new(3.0, 4.0);
        assert_eq!(v.norm_sq(), 25.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(Vec2::ZERO.dist(v), 5.0);
        assert_eq!(v.dist_sq(Vec2::ZERO), 25.0);
    }

    #[test]
    fn normalization() {
        let v = Vec2::new(3.0, 4.0).normalized().unwrap();
        assert!(close(v.norm(), 1.0));
        assert!(Vec2::ZERO.normalized().is_none());
    }

    #[test]
    fn rotation_quarter_turn() {
        let v = Vec2::new(1.0, 0.0).rotated(FRAC_PI_2);
        assert!(close(v.x, 0.0));
        assert!(close(v.y, 1.0));
        assert_eq!(Vec2::new(1.0, 0.0).perp(), Vec2::new(0.0, 1.0));
    }

    #[test]
    fn polar_round_trip() {
        let v = Vec2::from_polar(2.0, PI / 3.0);
        assert!(close(v.norm(), 2.0));
        assert!(close(v.angle(), PI / 3.0));
    }

    #[test]
    fn clamp_norm_limits_long_vectors_only() {
        let long = Vec2::new(30.0, 40.0).clamp_norm(5.0);
        assert!(close(long.norm(), 5.0));
        let short = Vec2::new(0.3, 0.4).clamp_norm(5.0);
        assert_eq!(short, Vec2::new(0.3, 0.4));
        assert_eq!(Vec2::ZERO.clamp_norm(1.0), Vec2::ZERO);
    }

    #[test]
    fn centroid_of_points() {
        let pts = [
            Vec2::new(0.0, 0.0),
            Vec2::new(2.0, 0.0),
            Vec2::new(0.0, 2.0),
            Vec2::new(2.0, 2.0),
        ];
        assert_eq!(Vec2::centroid(&pts), Vec2::new(1.0, 1.0));
        assert_eq!(Vec2::centroid(&[]), Vec2::ZERO);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec2::new(1.0, 1.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(2.0, 0.0));
    }

    #[test]
    fn conversions() {
        let v = Vec2::from((1.5, -2.5));
        let t: (f64, f64) = v.into();
        assert_eq!(t, (1.5, -2.5));
        let a: [f64; 2] = v.into();
        assert_eq!(a, [1.5, -2.5]);
    }

    fn arb_vec2() -> impl Strategy<Value = Vec2> {
        (-1e6..1e6f64, -1e6..1e6f64).prop_map(|(x, y)| Vec2::new(x, y))
    }

    proptest! {
        #[test]
        fn rotation_preserves_norm(v in arb_vec2(), angle in -10.0..10.0f64) {
            let r = v.rotated(angle);
            prop_assert!((r.norm() - v.norm()).abs() <= 1e-9 * (1.0 + v.norm()));
        }

        #[test]
        fn dot_is_symmetric(a in arb_vec2(), b in arb_vec2()) {
            prop_assert_eq!(a.dot(b), b.dot(a));
        }

        #[test]
        fn cross_is_antisymmetric(a in arb_vec2(), b in arb_vec2()) {
            prop_assert!((a.cross(b) + b.cross(a)).abs() <= 1e-6 * (1.0 + a.norm() * b.norm()));
        }

        #[test]
        fn triangle_inequality(a in arb_vec2(), b in arb_vec2()) {
            prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-9);
        }

        #[test]
        fn clamp_norm_never_exceeds(v in arb_vec2(), cap in 0.0..100.0f64) {
            prop_assert!(v.clamp_norm(cap).norm() <= cap * (1.0 + 1e-12) + 1e-12);
        }

        #[test]
        fn perp_is_orthogonal(v in arb_vec2()) {
            prop_assert!(v.dot(v.perp()).abs() <= 1e-9 * (1.0 + v.norm_sq()));
        }
    }
}
