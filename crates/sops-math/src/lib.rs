//! Numeric substrate for the `sops` workspace.
//!
//! This crate collects the small, dependency-free numerical building blocks
//! shared by the simulator, the shape-reduction pipeline and the
//! information-theoretic estimators:
//!
//! * [`Vec2`] — a plain 2-D double-precision vector with the usual algebra.
//! * [`special`] — digamma / log-gamma, needed by the
//!   Kraskov–Stögbauer–Grassberger estimator (paper Eq. 18).
//! * [`stats`] — Welford running statistics, slice summaries, quantiles.
//! * [`matrix`] — a small dense matrix with Cholesky / LU factorizations,
//!   used for analytic Gaussian multi-information in tests and for the KDE
//!   baseline estimator.
//! * [`pairmat`] — symmetric per-type-pair parameter matrices
//!   (`k_{αβ}`, `r_{αβ}`, `τ_{αβ}` of paper §4.1).
//! * [`rng`] — SplitMix64 seed derivation so that ensembles are
//!   bit-reproducible regardless of thread schedule.
//!
//! Everything here is deterministic and allocation-conscious; the heavy
//! lifting (simulation, estimation) lives in the crates layered on top.

pub mod matrix;
pub mod pairmat;
pub mod rng;
pub mod special;
pub mod stats;
pub mod vec2;

pub use matrix::Matrix;
pub use pairmat::PairMatrix;
pub use rng::SplitMix64;
pub use vec2::Vec2;

/// Natural-log to log-base-2 conversion factor (`1 / ln 2`).
///
/// The paper reports all information quantities in bits; the estimators
/// compute in nats internally.
pub const NATS_TO_BITS: f64 = std::f64::consts::LOG2_E;

/// The Euler–Mascheroni constant γ.
///
/// `ψ(1) = −γ`; used by tests of [`special::digamma`] and by closed-form
/// entropy expressions.
pub const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;
