//! Symmetric per-type-pair parameter matrices.
//!
//! The interaction parameters of the particle model — `k_{αβ}` (force
//! scale), `r_{αβ}` (preferred distance), `σ_{αβ}`, `τ_{αβ}` (Gaussian
//! widths) — are symmetric `l × l` matrices indexed by particle type
//! (paper §4.1). The paper only considers symmetric matrices because
//! asymmetric preferred distances lead to unstable or cycling dynamics, so
//! this type stores the upper triangle only and enforces symmetry by
//! construction.

/// Symmetric `l × l` matrix of `f64` parameters indexed by particle type.
///
/// Storage is the upper triangle in row-major order
/// (`(0,0), (0,1), …, (0,l−1), (1,1), …`), so `l(l+1)/2` values.
///
/// ```
/// use sops_math::PairMatrix;
/// let mut r = PairMatrix::constant(2, 1.0);
/// r.set(0, 1, 2.5);
/// assert_eq!(r.get(1, 0), 2.5); // symmetric by construction
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PairMatrix {
    types: usize,
    data: Vec<f64>,
}

impl PairMatrix {
    /// Creates a matrix with every entry set to `value`.
    pub fn constant(types: usize, value: f64) -> Self {
        assert!(types > 0, "PairMatrix: need at least one type");
        PairMatrix {
            types,
            data: vec![value; types * (types + 1) / 2],
        }
    }

    /// Builds a matrix from a full row-major `l × l` slice, checking
    /// symmetry.
    ///
    /// # Panics
    ///
    /// Panics if `full.len() != l²` or if the data is not symmetric to
    /// within `1e-12`.
    pub fn from_full(types: usize, full: &[f64]) -> Self {
        assert_eq!(full.len(), types * types, "PairMatrix::from_full: size");
        let mut m = PairMatrix::constant(types, 0.0);
        for a in 0..types {
            for b in a..types {
                let upper = full[a * types + b];
                let lower = full[b * types + a];
                assert!(
                    (upper - lower).abs() <= 1e-12,
                    "PairMatrix::from_full: entry ({a},{b}) not symmetric: {upper} vs {lower}"
                );
                m.set(a, b, upper);
            }
        }
        m
    }

    /// Builds a matrix by evaluating `f(min(a,b), max(a,b))` for each pair.
    pub fn from_fn(types: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = PairMatrix::constant(types, 0.0);
        for a in 0..types {
            for b in a..types {
                m.set(a, b, f(a, b));
            }
        }
        m
    }

    /// Number of types `l`.
    pub fn types(&self) -> usize {
        self.types
    }

    #[inline]
    fn index(&self, a: usize, b: usize) -> usize {
        debug_assert!(a < self.types && b < self.types);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        // Row `lo` of the upper triangle starts after
        // sum_{r<lo} (types - r) = lo*types - lo(lo-1)/2 entries.
        lo * self.types - lo * (lo.wrapping_sub(1)) / 2 + (hi - lo)
    }

    /// Parameter for the (unordered) type pair `{a, b}`.
    #[inline]
    pub fn get(&self, a: usize, b: usize) -> f64 {
        self.data[self.index(a, b)]
    }

    /// Sets the parameter for the (unordered) type pair `{a, b}`.
    #[inline]
    pub fn set(&mut self, a: usize, b: usize, value: f64) {
        let i = self.index(a, b);
        self.data[i] = value;
    }

    /// Applies `f` to every stored entry.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> PairMatrix {
        PairMatrix {
            types: self.types,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Iterates over `(a, b, value)` for all unordered pairs `a ≤ b`.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.types).flat_map(move |a| (a..self.types).map(move |b| (a, b, self.get(a, b))))
    }

    /// Smallest stored entry.
    pub fn min_value(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest stored entry.
    pub fn max_value(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// `true` if diagonal entries are strictly smaller than every
    /// off-diagonal entry in their row/column.
    ///
    /// The paper notes (§4.1) that choosing smaller diagonal than
    /// off-diagonal values in `k` or `r` forces same-type clustering; this
    /// predicate lets experiments assert that property of generated
    /// matrices.
    pub fn diagonal_dominated(&self) -> bool {
        for a in 0..self.types {
            for b in 0..self.types {
                if a != b && self.get(a, a) >= self.get(a, b) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constant_fill() {
        let m = PairMatrix::constant(3, 2.5);
        for a in 0..3 {
            for b in 0..3 {
                assert_eq!(m.get(a, b), 2.5);
            }
        }
    }

    #[test]
    fn symmetric_set_get() {
        let mut m = PairMatrix::constant(4, 0.0);
        m.set(1, 3, 7.0);
        assert_eq!(m.get(3, 1), 7.0);
        assert_eq!(m.get(1, 3), 7.0);
        m.set(3, 1, 9.0);
        assert_eq!(m.get(1, 3), 9.0);
    }

    #[test]
    fn from_full_fig4_matrix() {
        // The Fig. 4 preferred-distance matrix from the paper.
        let m = PairMatrix::from_full(3, &[2.5, 5.0, 4.0, 5.0, 2.5, 2.0, 4.0, 2.0, 3.5]);
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m.get(2, 1), 2.0);
        assert_eq!(m.get(2, 2), 3.5);
        assert_eq!(m.min_value(), 2.0);
        assert_eq!(m.max_value(), 5.0);
    }

    #[test]
    #[should_panic(expected = "not symmetric")]
    fn from_full_rejects_asymmetric() {
        PairMatrix::from_full(2, &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn from_fn_and_iter_pairs() {
        let m = PairMatrix::from_fn(3, |a, b| (a * 10 + b) as f64);
        let pairs: Vec<_> = m.iter_pairs().collect();
        assert_eq!(pairs.len(), 6);
        assert_eq!(pairs[0], (0, 0, 0.0));
        assert_eq!(pairs[1], (0, 1, 1.0));
        assert_eq!(pairs[5], (2, 2, 22.0));
    }

    #[test]
    fn diagonal_dominated_predicate() {
        // diag 1.0 < off-diag 5.0 -> clustering-friendly
        let clustered = PairMatrix::from_fn(3, |a, b| if a == b { 1.0 } else { 5.0 });
        assert!(clustered.diagonal_dominated());
        let uniform = PairMatrix::constant(3, 2.0);
        assert!(!uniform.diagonal_dominated());
    }

    #[test]
    fn map_applies_elementwise() {
        let m = PairMatrix::constant(2, 2.0).map(|v| v * v);
        assert_eq!(m.get(0, 1), 4.0);
    }

    proptest! {
        #[test]
        fn get_is_order_invariant(types in 1..8usize, seed in proptest::collection::vec(0.0..1.0f64, 36)) {
            let m = PairMatrix::from_fn(types, |a, b| seed[(a * 6 + b) % 36]);
            for a in 0..types {
                for b in 0..types {
                    prop_assert_eq!(m.get(a, b), m.get(b, a));
                }
            }
        }

        #[test]
        fn index_covers_triangle_bijectively(types in 1..10usize) {
            let mut m = PairMatrix::constant(types, 0.0);
            let mut counter = 0.0;
            for a in 0..types {
                for b in a..types {
                    counter += 1.0;
                    m.set(a, b, counter);
                }
            }
            // All entries distinct => no two pairs alias the same slot.
            let mut seen: Vec<f64> = m.iter_pairs().map(|(_, _, v)| v).collect();
            seen.sort_by(|x, y| x.partial_cmp(y).unwrap());
            seen.dedup();
            prop_assert_eq!(seen.len(), types * (types + 1) / 2);
        }
    }
}
