//! Deterministic seed derivation and a minimal PRNG.
//!
//! Ensemble experiments run `m` independent simulations in parallel. To
//! keep results bit-reproducible regardless of thread scheduling, every
//! sample's RNG seed is *derived* from a master seed and the sample index
//! with SplitMix64, rather than drawn from a shared stream.
//!
//! SplitMix64 is also a perfectly serviceable stand-alone PRNG for
//! non-cryptographic simulation use (it passes BigCrush); the simulator
//! crate layers Gaussian sampling on top of the `rand` crate but uses this
//! module for seeding and for places where a zero-dependency generator is
//! convenient.

/// SplitMix64 PRNG / seed mixer (Steele, Lea & Flood 2014).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn next_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` (Lemire-style rejection-free bound is
    /// unnecessary here; simple modulo bias is < 2⁻⁵³·n for the tiny `n`
    /// used in this workspace, but we use the multiply-shift reduction
    /// anyway).
    #[inline]
    pub fn next_below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// A standard-normal variate via Box–Muller (uses two uniforms).
    pub fn next_standard_normal(&mut self) -> f64 {
        // Avoid u = 0 which would give ln(0).
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        let v = self.next_f64();
        (-2.0 * u.ln()).sqrt() * (std::f64::consts::TAU * v).cos()
    }
}

/// Derives an independent child seed from `(master, stream)`.
///
/// Used to give each ensemble sample, each ICP restart, and each random
/// type-matrix draw its own decorrelated RNG stream. Mixing both values
/// through SplitMix64 twice avoids the low-entropy-seed correlations of
/// naive `master + stream`.
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut sm = SplitMix64::new(master ^ 0xA076_1D64_78BD_642F_u64.wrapping_mul(stream | 1));
    sm.next_u64();
    let mut sm2 = SplitMix64::new(sm.next_u64() ^ stream);
    sm2.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_sequence() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SplitMix64::new(9);
        for _ in 0..10_000 {
            let x = r.next_range(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
        }
    }

    #[test]
    fn next_below_uniformish() {
        let mut r = SplitMix64::new(11);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            let expected = n as f64 / 10.0;
            assert!(
                (c as f64 - expected).abs() < 5.0 * expected.sqrt(),
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = SplitMix64::new(13);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x = r.next_standard_normal();
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn derived_seeds_decorrelated() {
        // Seeds derived for consecutive streams must not collide and the
        // generators they seed must not produce identical first draws.
        let master = 1234;
        let mut seen = std::collections::HashSet::new();
        for stream in 0..1000u64 {
            let s = derive_seed(master, stream);
            assert!(seen.insert(s), "seed collision at stream {stream}");
        }
        let a = SplitMix64::new(derive_seed(master, 0)).next_u64();
        let b = SplitMix64::new(derive_seed(master, 1)).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn derive_seed_depends_on_both_inputs() {
        assert_ne!(derive_seed(1, 5), derive_seed(2, 5));
        assert_ne!(derive_seed(1, 5), derive_seed(1, 6));
    }
}
