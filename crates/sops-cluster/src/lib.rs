//! k-means clustering (paper §5.3.1).
//!
//! For large collectives the paper approximates the observer set: "we
//! perform a k-means clustering on the particles of each type and thus
//! recover `l · k` mean variables". This crate provides a deterministic
//! k-means++ / Lloyd implementation over 2-D points and the per-type
//! coarse-observer helper.
//!
//! Cross-sample correspondence of cluster means is established by
//! canonical ordering (lexicographic by centre coordinates) — valid
//! because every sample has already been ICP-aligned into a common frame
//! when the approximation is applied (DESIGN.md, pinned interpretation #5).

use sops_math::{SplitMix64, Vec2};

/// Parameters for [`kmeans`].
#[derive(Debug, Clone, Copy)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations per restart.
    pub max_iterations: usize,
    /// Independent k-means++ restarts; the lowest-inertia result wins.
    pub restarts: usize,
    /// Stop when inertia improves by less than this relative amount.
    pub tolerance: f64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 2,
            max_iterations: 50,
            restarts: 4,
            tolerance: 1e-9,
        }
    }
}

/// Result of a clustering.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Cluster centres in canonical order (lexicographic by `(x, y)`).
    pub centers: Vec<Vec2>,
    /// `assignment[i]` — index into `centers` for point `i`.
    pub assignment: Vec<usize>,
    /// Sum of squared distances of points to their assigned centre.
    pub inertia: f64,
}

/// Runs k-means++ / Lloyd on `points`.
///
/// If `k >= points.len()`, every point becomes its own centre (and empty
/// clusters are avoided by construction). Deterministic in `seed`.
///
/// ```
/// use sops_cluster::{kmeans, KMeansConfig};
/// use sops_math::Vec2;
/// let pts = vec![Vec2::new(0.0, 0.0), Vec2::new(0.1, 0.0), Vec2::new(9.0, 0.0)];
/// let result = kmeans(&pts, &KMeansConfig { k: 2, ..Default::default() }, 1);
/// assert_eq!(result.assignment, vec![0, 0, 1]); // canonical order: left centre first
/// ```
///
/// # Panics
///
/// Panics if `points` is empty or `cfg.k == 0`.
pub fn kmeans(points: &[Vec2], cfg: &KMeansConfig, seed: u64) -> KMeans {
    assert!(!points.is_empty(), "kmeans: no points");
    assert!(cfg.k > 0, "kmeans: k must be >= 1");
    let k = cfg.k.min(points.len());

    let mut best: Option<KMeans> = None;
    for restart in 0..cfg.restarts.max(1) {
        let mut rng = SplitMix64::new(sops_math::rng::derive_seed(seed, restart as u64));
        let candidate = lloyd(points, k, cfg, &mut rng);
        if best.as_ref().is_none_or(|b| candidate.inertia < b.inertia) {
            best = Some(candidate);
        }
    }
    let mut result = best.expect("kmeans: at least one restart");
    canonicalize(&mut result);
    result
}

fn lloyd(points: &[Vec2], k: usize, cfg: &KMeansConfig, rng: &mut SplitMix64) -> KMeans {
    let mut centers = plus_plus_init(points, k, rng);
    let mut assignment = vec![0usize; points.len()];
    let mut prev_inertia = f64::INFINITY;
    for it in 0..cfg.max_iterations {
        // Assign.
        let mut inertia = 0.0;
        for (i, &p) in points.iter().enumerate() {
            let (ci, d2) = nearest_center(&centers, p);
            assignment[i] = ci;
            inertia += d2;
        }
        if it > 0 && prev_inertia - inertia <= cfg.tolerance * prev_inertia {
            break;
        }
        prev_inertia = inertia;
        // Update.
        let mut sums = vec![Vec2::ZERO; k];
        let mut counts = vec![0usize; k];
        for (&p, &a) in points.iter().zip(&assignment) {
            sums[a] += p;
            counts[a] += 1;
        }
        for c in 0..k {
            if counts[c] > 0 {
                centers[c] = sums[c] / counts[c] as f64;
            } else {
                // Re-seed an empty cluster at the point farthest from its
                // centre — the standard fix keeping exactly k clusters.
                let (far_i, _) = points
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| (i, nearest_center(&centers, p).1))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .unwrap();
                centers[c] = points[far_i];
            }
        }
    }
    // Final assignment pass so `assignment`/`inertia` always correspond to
    // the returned centres, even when the iteration cap was hit right
    // after a centre update.
    let mut inertia = 0.0;
    for (i, &p) in points.iter().enumerate() {
        let (ci, d2) = nearest_center(&centers, p);
        assignment[i] = ci;
        inertia += d2;
    }
    KMeans {
        centers,
        assignment,
        inertia,
    }
}

/// k-means++ seeding: first centre uniform, subsequent centres sampled
/// with probability proportional to squared distance to the nearest
/// chosen centre.
fn plus_plus_init(points: &[Vec2], k: usize, rng: &mut SplitMix64) -> Vec<Vec2> {
    let mut centers = Vec::with_capacity(k);
    centers.push(points[rng.next_below(points.len() as u64) as usize]);
    let mut d2: Vec<f64> = points.iter().map(|&p| p.dist_sq(centers[0])).collect();
    while centers.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with existing centres; any point works.
            points[rng.next_below(points.len() as u64) as usize]
        } else {
            let mut target = rng.next_f64() * total;
            let mut chosen = points.len() - 1;
            for (i, &w) in d2.iter().enumerate() {
                target -= w;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            points[chosen]
        };
        centers.push(next);
        for (i, &p) in points.iter().enumerate() {
            d2[i] = d2[i].min(p.dist_sq(next));
        }
    }
    centers
}

fn nearest_center(centers: &[Vec2], p: Vec2) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (i, &c) in centers.iter().enumerate() {
        let d2 = p.dist_sq(c);
        if d2 < best.1 {
            best = (i, d2);
        }
    }
    best
}

/// Sorts centres lexicographically and remaps assignments accordingly.
fn canonicalize(result: &mut KMeans) {
    let k = result.centers.len();
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| {
        let ca = result.centers[a];
        let cb = result.centers[b];
        ca.x.partial_cmp(&cb.x)
            .unwrap()
            .then(ca.y.partial_cmp(&cb.y).unwrap())
    });
    let mut rank = vec![0usize; k];
    for (new_idx, &old_idx) in order.iter().enumerate() {
        rank[old_idx] = new_idx;
    }
    result.centers = order.iter().map(|&i| result.centers[i]).collect();
    for a in result.assignment.iter_mut() {
        *a = rank[*a];
    }
}

/// The coarse observers of §5.3.1: clusters each type's particles into
/// `k_per_type` clusters and returns the `l · k` centres ordered by
/// `(type, canonical centre order)`.
///
/// Types with fewer than `k_per_type` particles contribute one centre per
/// particle, *padded* by repeating their last centre so every sample yields
/// the same observer count (required for cross-sample estimation).
pub fn per_type_means(
    points: &[Vec2],
    types: &[u16],
    type_count: usize,
    k_per_type: usize,
    cfg: &KMeansConfig,
    seed: u64,
) -> Vec<Vec2> {
    assert_eq!(points.len(), types.len(), "per_type_means: length mismatch");
    assert!(k_per_type > 0);
    let mut out = Vec::with_capacity(type_count * k_per_type);
    for t in 0..type_count {
        let members: Vec<Vec2> = points
            .iter()
            .zip(types)
            .filter(|(_, &ty)| ty as usize == t)
            .map(|(&p, _)| p)
            .collect();
        assert!(
            !members.is_empty(),
            "per_type_means: type {t} has no particles"
        );
        let sub = kmeans(
            &members,
            &KMeansConfig {
                k: k_per_type,
                ..*cfg
            },
            sops_math::rng::derive_seed(seed, t as u64),
        );
        let got = sub.centers.len();
        out.extend_from_slice(&sub.centers);
        for _ in got..k_per_type {
            out.push(*sub.centers.last().unwrap());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn two_blobs(n_each: usize, sep: f64, seed: u64) -> Vec<Vec2> {
        let mut rng = SplitMix64::new(seed);
        let mut pts = Vec::new();
        for _ in 0..n_each {
            pts.push(Vec2::new(
                rng.next_range(-0.5, 0.5) - sep / 2.0,
                rng.next_range(-0.5, 0.5),
            ));
        }
        for _ in 0..n_each {
            pts.push(Vec2::new(
                rng.next_range(-0.5, 0.5) + sep / 2.0,
                rng.next_range(-0.5, 0.5),
            ));
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let pts = two_blobs(50, 10.0, 1);
        let res = kmeans(&pts, &KMeansConfig::default(), 42);
        assert_eq!(res.centers.len(), 2);
        // Canonical order: left blob first.
        assert!(res.centers[0].x < -4.0);
        assert!(res.centers[1].x > 4.0);
        // All left points in cluster 0, right points in cluster 1.
        for (i, &a) in res.assignment.iter().enumerate() {
            assert_eq!(a, usize::from(i >= 50), "point {i}");
        }
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let pts = two_blobs(40, 6.0, 3);
        let mut last = f64::INFINITY;
        for k in 1..=4 {
            let res = kmeans(
                &pts,
                &KMeansConfig {
                    k,
                    ..KMeansConfig::default()
                },
                7,
            );
            assert!(
                res.inertia <= last + 1e-9,
                "k={k}: inertia {} did not decrease from {last}",
                res.inertia
            );
            last = res.inertia;
        }
    }

    #[test]
    fn k_equal_points_gives_zero_inertia() {
        let pts = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(5.0, 0.0),
            Vec2::new(0.0, 5.0),
        ];
        let res = kmeans(
            &pts,
            &KMeansConfig {
                k: 3,
                ..KMeansConfig::default()
            },
            5,
        );
        assert!(res.inertia < 1e-18);
    }

    #[test]
    fn k_larger_than_point_count_clamped() {
        let pts = vec![Vec2::new(1.0, 1.0), Vec2::new(2.0, 2.0)];
        let res = kmeans(
            &pts,
            &KMeansConfig {
                k: 10,
                ..KMeansConfig::default()
            },
            5,
        );
        assert_eq!(res.centers.len(), 2);
    }

    #[test]
    fn deterministic_in_seed() {
        let pts = two_blobs(30, 4.0, 9);
        let a = kmeans(&pts, &KMeansConfig::default(), 11);
        let b = kmeans(&pts, &KMeansConfig::default(), 11);
        assert_eq!(a.centers, b.centers);
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn canonical_center_order() {
        let pts = two_blobs(20, 8.0, 13);
        let res = kmeans(&pts, &KMeansConfig::default(), 17);
        for w in res.centers.windows(2) {
            assert!(
                w[0].x < w[1].x || (w[0].x == w[1].x && w[0].y <= w[1].y),
                "centers not canonically ordered"
            );
        }
    }

    #[test]
    fn identical_points_do_not_crash() {
        let pts = vec![Vec2::new(3.0, 3.0); 10];
        let res = kmeans(
            &pts,
            &KMeansConfig {
                k: 3,
                ..KMeansConfig::default()
            },
            23,
        );
        assert!(res.inertia < 1e-18);
        assert_eq!(res.assignment.len(), 10);
    }

    #[test]
    fn per_type_means_layout() {
        // Type 0: two blobs near x = ±5; type 1: single blob at y = 10.
        let mut pts = two_blobs(20, 10.0, 31);
        let mut types = vec![0u16; pts.len()];
        for i in 0..10 {
            pts.push(Vec2::new(i as f64 * 0.01, 10.0));
            types.push(1);
        }
        let obs = per_type_means(&pts, &types, 2, 2, &KMeansConfig::default(), 3);
        assert_eq!(obs.len(), 4);
        // Type-0 centres around ±5.
        assert!(obs[0].x < -4.0 && obs[1].x > 4.0);
        // Type-1 centres near y = 10 (k=2 splits the strip; both near 10).
        assert!((obs[2].y - 10.0).abs() < 0.5);
        assert!((obs[3].y - 10.0).abs() < 0.5);
    }

    #[test]
    fn per_type_means_pads_small_types() {
        let pts = vec![
            Vec2::new(1.0, 2.0),
            Vec2::new(5.0, 5.0),
            Vec2::new(5.5, 5.0),
        ];
        let types = vec![0u16, 1, 1];
        let obs = per_type_means(&pts, &types, 2, 2, &KMeansConfig::default(), 3);
        assert_eq!(obs.len(), 4);
        // Type 0 has one particle: centre repeated.
        assert_eq!(obs[0], obs[1]);
        assert_eq!(obs[0], Vec2::new(1.0, 2.0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn every_point_assigned_to_nearest_center(seed in 0..u64::MAX, n in 5..60usize, k in 1..5usize) {
            let mut rng = SplitMix64::new(seed);
            let pts: Vec<Vec2> = (0..n)
                .map(|_| Vec2::new(rng.next_range(-10.0, 10.0), rng.next_range(-10.0, 10.0)))
                .collect();
            let res = kmeans(&pts, &KMeansConfig { k, ..KMeansConfig::default() }, seed);
            for (i, &a) in res.assignment.iter().enumerate() {
                let assigned = pts[i].dist_sq(res.centers[a]);
                for &c in &res.centers {
                    prop_assert!(assigned <= pts[i].dist_sq(c) + 1e-9);
                }
            }
        }

        #[test]
        fn inertia_matches_assignment(seed in 0..u64::MAX, n in 5..40usize) {
            let mut rng = SplitMix64::new(seed);
            let pts: Vec<Vec2> = (0..n)
                .map(|_| Vec2::new(rng.next_range(-5.0, 5.0), rng.next_range(-5.0, 5.0)))
                .collect();
            let res = kmeans(&pts, &KMeansConfig { k: 3, ..KMeansConfig::default() }, seed);
            let recomputed: f64 = pts
                .iter()
                .zip(&res.assignment)
                .map(|(&p, &a)| p.dist_sq(res.centers[a]))
                .sum();
            prop_assert!((recomputed - res.inertia).abs() <= 1e-6 * (1.0 + res.inertia));
        }
    }
}
